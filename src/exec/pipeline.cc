#include "exec/pipeline.h"

#include <algorithm>
#include <vector>

#include "common/bit_util.h"
#include "common/metrics.h"
#include "exec/fusion.h"
#include "exec/pruning.h"
#include "simd/agg_simd.h"
#include "simd/filter_simd.h"
#include "storage/page_builder.h"

namespace etsqp::exec {

namespace {

constexpr __int128 kI64Max = std::numeric_limits<int64_t>::max();
constexpr __int128 kI64Min = std::numeric_limits<int64_t>::min();

bool FitsInt64(__int128 v) { return v >= kI64Min && v <= kI64Max; }

using metrics::ScopedStageTimer;
using metrics::Stage;

/// Stage recording target: non-null only when the caller both supplied a
/// stats sink and asked for collection, so every timer below is a no-op
/// (no clock read) on the default path.
metrics::StageBreakdown* StagesOf(const PipelineOptions& opt,
                                  QueryStats* stats) {
  return (opt.collect_stats && stats != nullptr) ? &stats->stages : nullptr;
}

int32_t ClampToInt32(int64_t v) {
  if (v > std::numeric_limits<int32_t>::max()) {
    return std::numeric_limits<int32_t>::max();
  }
  if (v < std::numeric_limits<int32_t>::min()) {
    return std::numeric_limits<int32_t>::min();
  }
  return static_cast<int32_t>(v);
}

/// Positions [p0, p1) within `page` matching the time filter, intersected
/// with the slice range [begin, end).
Status SlicePositions(const storage::Page& page, size_t begin, size_t end,
                      const TimeRange& trange, const PipelineOptions& opt,
                      size_t* p0, size_t* p1, QueryStats* stats) {
  end = std::min<size_t>(end, page.header.count);
  if (trange.IsUniverse()) {
    *p0 = begin;
    *p1 = end;
    return Status::Ok();
  }
  metrics::StageBreakdown* stages = StagesOf(opt, stats);
  if (page.header.time_encoding != enc::ColumnEncoding::kTs2Diff) {
    // Generic path: decode times and binary-search (sorted).
    DecodedColumn times;
    ETSQP_RETURN_IF_ERROR(DecodeColumn(
        page.time_data.data(), page.time_data.size(),
        page.header.time_encoding, page.header.count, opt.strategy, opt.n_v,
        &times, stages));
    if (stats != nullptr) stats->tuples_scanned += times.size();
    ScopedStageTimer timer(stages, Stage::kFilter);
    timer.AddTuples(times.size());
    std::vector<int64_t> t(times.size());
    times.Materialize(t.data());
    size_t lo = std::lower_bound(t.begin(), t.end(), trange.lo) - t.begin();
    size_t hi = std::upper_bound(t.begin(), t.end(), trange.hi) - t.begin();
    *p0 = std::max(lo, begin);
    *p1 = std::min(hi, end);
    return Status::Ok();
  }
  size_t first = 0, last = 0;
  uint64_t pruned = 0, scanned = 0;
  {
    // The TS2DIFF positioner decodes and scans internally; its whole cost is
    // the time-filter stage (Proposition 4 pruning happens inside it).
    ScopedStageTimer timer(stages, Stage::kFilter);
    ETSQP_RETURN_IF_ERROR(TimeRangePositions(
        page.time_data.data(), page.time_data.size(), page.header.count,
        trange, opt.strategy, opt.n_v, opt.prune, &first, &last, &pruned,
        &scanned));
    timer.AddTuples(scanned);
    timer.AddBytes(page.time_data.size());
  }
  if (stats != nullptr) {
    stats->blocks_pruned += pruned;
    stats->tuples_scanned += scanned;
  }
  *p0 = std::max(first, begin);
  *p1 = std::min(last, end);
  return Status::Ok();
}

/// Whether `func` consumes min/max (others skip that pass entirely).
bool NeedsMinMax(AggFunc func) {
  return func == AggFunc::kMin || func == AggFunc::kMax;
}

/// Aggregates a decoded column range [0, n) into `accum` (no value filter).
void AggDecoded(const DecodedColumn& col, AggFunc func, AggAccum* accum,
                metrics::StageBreakdown* stages) {
  size_t n = col.size();
  if (n == 0) return;
  ScopedStageTimer timer(stages, Stage::kAggregate);
  timer.AddTuples(n);
  const bool need_sq = func == AggFunc::kVariance;
  if (col.narrow && !need_sq) {
    int64_t off_sum = simd::SumInt32(col.offsets.data(), n);
    accum->sum += static_cast<__int128>(col.base) * n + off_sum;
    accum->count += n;
    if (NeedsMinMax(func)) {
      int32_t mn, mx;
      simd::MinMaxInt32(col.offsets.data(), n, &mn, &mx);
      accum->min = std::min(accum->min, col.base + mn);
      accum->max = std::max(accum->max, col.base + mx);
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) accum->AddValue(col.Get(i), need_sq);
}

/// Aggregates the subset of a decoded column matching `vrange`.
void AggDecodedFiltered(const DecodedColumn& col, const ValueRange& vrange,
                        AggFunc func, AggAccum* accum,
                        metrics::StageBreakdown* stages) {
  size_t n = col.size();
  if (n == 0) return;
  const bool need_sq = func == AggFunc::kVariance;
  if (col.narrow && !need_sq) {
    int32_t rel_lo = ClampToInt32(vrange.lo == std::numeric_limits<int64_t>::min()
                                      ? std::numeric_limits<int64_t>::min()
                                      : vrange.lo - col.base);
    int32_t rel_hi = ClampToInt32(vrange.hi == std::numeric_limits<int64_t>::max()
                                      ? std::numeric_limits<int64_t>::max()
                                      : vrange.hi - col.base);
    std::vector<uint64_t> mask(CeilDiv(n, 64));
    ScopedStageTimer filter_timer(stages, Stage::kFilter);
    filter_timer.AddTuples(n);
    simd::RangeFilterMaskInt32(col.offsets.data(), n, rel_lo, rel_hi,
                               mask.data());
    size_t cnt = simd::CountMaskBits(mask.data(), n);
    filter_timer.Stop();
    if (cnt == 0) return;
    ScopedStageTimer timer(stages, Stage::kAggregate);
    timer.AddTuples(cnt);
    accum->count += cnt;
    if (func != AggFunc::kCount && !NeedsMinMax(func)) {
      int64_t off_sum =
          simd::MaskedSumInt32(col.offsets.data(), mask.data(), n);
      accum->sum += static_cast<__int128>(col.base) * cnt + off_sum;
    }
    if (NeedsMinMax(func)) {
      int32_t mn, mx;
      if (simd::MaskedMinMaxInt32(col.offsets.data(), mask.data(), n, &mn,
                                  &mx)) {
        accum->min = std::min(accum->min, col.base + mn);
        accum->max = std::max(accum->max, col.base + mx);
      }
    }
    return;
  }
  ScopedStageTimer timer(stages, Stage::kAggregate);
  timer.AddTuples(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t v = col.Get(i);
    if (vrange.Contains(v)) accum->AddValue(v, need_sq);
  }
}

/// Per-slice cache for the fused value-column reader: sliding windows call
/// AggValues once per window, but the unpacked-residual cache inside
/// Ts2DiffFusedReader is only effective when shared across those calls.
struct ValueColumnContext {
  bool tried = false;
  Result<Ts2DiffFusedReader> reader = Status::NotFound("unopened");

  Ts2DiffFusedReader* Get(const storage::Page& page) {
    if (!tried) {
      tried = true;
      reader = Ts2DiffFusedReader::Open(page.value_data.data(),
                                        page.value_data.size());
    }
    return reader.ok() ? &reader.value() : nullptr;
  }
};

/// Value aggregation over positions [p0, p1) with optional value filter and
/// Proposition 5 block pruning. `ctx` (optional) shares the fused reader
/// across calls on the same page.
Status AggValues(const storage::Page& page, size_t p0, size_t p1,
                 const ValueRange& vrange, AggFunc func,
                 const PipelineOptions& opt, AggAccum* accum,
                 QueryStats* stats, ValueColumnContext* ctx = nullptr) {
  if (p0 >= p1) return Status::Ok();
  metrics::StageBreakdown* stages = StagesOf(opt, stats);
  const bool need_sq = func == AggFunc::kVariance;
  const enc::ColumnEncoding venc = page.header.value_encoding;
  const bool fusable =
      opt.fusion && opt.strategy == DecodeStrategy::kEtsqp && !vrange.active &&
      (func == AggFunc::kSum || func == AggFunc::kAvg ||
       func == AggFunc::kCount ||
       (func == AggFunc::kVariance && venc == enc::ColumnEncoding::kDeltaRle));

  // COUNT with no value filter never needs the value column.
  if (func == AggFunc::kCount && !vrange.active) {
    accum->count += p1 - p0;
    return Status::Ok();
  }

  if (fusable && venc == enc::ColumnEncoding::kTs2Diff) {
    ValueColumnContext local;
    Ts2DiffFusedReader* reader =
        ctx != nullptr ? ctx->Get(page) : local.Get(page);
    if (reader != nullptr) {
      // The fused reader skips the separate unpack/delta passes entirely —
      // its whole cost is the aggregation stage (Section IV).
      ScopedStageTimer timer(stages, Stage::kAggregate);
      int64_t sum = 0;
      Status st = reader->SumRange(p0, p1, &sum);
      if (st.ok()) {
        accum->sum += sum;
        accum->count += p1 - p0;
        timer.AddTuples(p1 - p0);
        if (stats != nullptr) stats->tuples_scanned += p1 - p0;
        return Status::Ok();
      }
      // kOverflow: retry below at a larger quantity (the decode path
      // accumulates in 128-bit — Section VI-C's "aggregate with a larger
      // quantity"); kNotSupported (wide residuals): same fallback.
    }
  }
  if (fusable && venc == enc::ColumnEncoding::kDeltaRle) {
    Result<enc::DeltaRleColumn> col = enc::DeltaRleColumn::Parse(
        page.value_data.data(), page.value_data.size());
    if (!col.ok()) return col.status();
    DeltaRleAggregates agg;
    ScopedStageTimer timer(stages, Stage::kAggregate);
    Status st = FusedAggDeltaRle(col.value(), p0, p1, need_sq, &agg);
    timer.Stop();
    if (st.ok()) {
      accum->sum += agg.sum;
      accum->sum_sq += agg.sum_sq;
      accum->count += agg.count;
      if (stages != nullptr) {
        (*stages)[Stage::kAggregate].tuples += agg.count;
      }
      if (stats != nullptr) stats->tuples_scanned += agg.count;
      return Status::Ok();
    }
    if (st.code() != StatusCode::kOverflow) return st;
    // kOverflow: widen via the decode path below.
  }

  // Proposition 5: with a value filter over TS2DIFF, skip blocks whose
  // width-derived bounds cannot intersect the filter range.
  if (vrange.active && opt.prune &&
      venc == enc::ColumnEncoding::kTs2Diff &&
      opt.strategy != DecodeStrategy::kSerial) {
    Result<enc::Ts2DiffColumn> parsed = enc::Ts2DiffColumn::Parse(
        page.value_data.data(), page.value_data.size());
    if (!parsed.ok()) return parsed.status();
    for (const enc::Ts2DiffBlock& b : parsed.value().blocks()) {
      size_t bs = b.start_index;
      size_t be = bs + b.num_values();
      size_t from = std::max(bs, p0);
      size_t to = std::min(be, p1);
      if (from >= to) continue;
      if (ValueBlockPrunable(b, vrange.lo, vrange.hi)) {
        if (stats != nullptr) ++stats->blocks_pruned;
        continue;
      }
      DecodedColumn vals;
      ETSQP_RETURN_IF_ERROR(DecodeColumnRange(
          page.value_data.data(), page.value_data.size(), venc,
          page.header.count, opt.strategy, opt.n_v, from, to, &vals,
          /*ordered=*/false, stages));
      if (stats != nullptr) stats->tuples_scanned += vals.size();
      AggDecodedFiltered(vals, vrange, func, accum, stages);
    }
    return Status::Ok();
  }

  // Plain decode-then-aggregate (order-insensitive consumers).
  DecodedColumn vals;
  ETSQP_RETURN_IF_ERROR(DecodeColumnRange(
      page.value_data.data(), page.value_data.size(), venc,
      page.header.count, opt.strategy, opt.n_v, p0, p1, &vals,
      /*ordered=*/false, stages));
  if (stats != nullptr) stats->tuples_scanned += vals.size();
  if (vrange.active) {
    AggDecodedFiltered(vals, vrange, func, accum, stages);
  } else {
    AggDecoded(vals, func, accum, stages);
  }
  // Sums accumulate in 128-bit; int64 range is enforced at Finalize for
  // SUM only (AVG/VAR remain exact at this width — Section VI-C's larger
  // quantity).
  return Status::Ok();
}

}  // namespace

Status AggAccum::Finalize(AggFunc func, double* out) const {
  switch (func) {
    case AggFunc::kSum:
      if (!FitsInt64(sum)) return Status::Overflow("SUM overflow");
      *out = static_cast<double>(static_cast<int64_t>(sum));
      return Status::Ok();
    case AggFunc::kCount:
      *out = static_cast<double>(count);
      return Status::Ok();
    case AggFunc::kAvg:
      if (count == 0) return Status::NotFound("AVG of empty set");
      *out = static_cast<double>(sum) / static_cast<double>(count);
      return Status::Ok();
    case AggFunc::kMin:
      if (count == 0) return Status::NotFound("MIN of empty set");
      *out = static_cast<double>(min);
      return Status::Ok();
    case AggFunc::kMax:
      if (count == 0) return Status::NotFound("MAX of empty set");
      *out = static_cast<double>(max);
      return Status::Ok();
    case AggFunc::kVariance: {
      if (count == 0) return Status::NotFound("VAR of empty set");
      double mean = static_cast<double>(sum) / static_cast<double>(count);
      double ex2 = static_cast<double>(sum_sq) / static_cast<double>(count);
      *out = ex2 - mean * mean;
      return Status::Ok();
    }
  }
  return Status::Internal("unknown aggregate");
}

Status FloatAggAccum::Finalize(AggFunc func, double* out) const {
  switch (func) {
    case AggFunc::kSum:
      *out = sum;
      return Status::Ok();
    case AggFunc::kCount:
      *out = static_cast<double>(count);
      return Status::Ok();
    case AggFunc::kAvg:
      if (count == 0) return Status::NotFound("AVG of empty set");
      *out = sum / static_cast<double>(count);
      return Status::Ok();
    case AggFunc::kMin:
      if (count == 0) return Status::NotFound("MIN of empty set");
      *out = min;
      return Status::Ok();
    case AggFunc::kMax:
      if (count == 0) return Status::NotFound("MAX of empty set");
      *out = max;
      return Status::Ok();
    case AggFunc::kVariance: {
      if (count == 0) return Status::NotFound("VAR of empty set");
      double mean = sum / static_cast<double>(count);
      *out = sum_sq / static_cast<double>(count) - mean * mean;
      return Status::Ok();
    }
  }
  return Status::Internal("unknown aggregate");
}

Status AggregateFloatSlice(const storage::Page& page, size_t begin,
                           size_t end, const TimeRange& trange,
                           const ValueRange& vrange, AggFunc func,
                           const PipelineOptions& opt, FloatAggAccum* accum,
                           QueryStats* stats) {
  size_t p0 = 0, p1 = 0;
  ETSQP_RETURN_IF_ERROR(
      SlicePositions(page, begin, end, trange, opt, &p0, &p1, stats));
  if (p0 >= p1) return Status::Ok();
  metrics::StageBreakdown* stages = StagesOf(opt, stats);
  // XOR-pattern codecs are serial streams: decode the whole column once,
  // then aggregate the slice positions.
  std::vector<double> values(page.header.count);
  {
    ScopedStageTimer timer(stages, Stage::kUnpack);
    timer.AddTuples(page.header.count);
    timer.AddBytes(page.value_data.size());
    ETSQP_RETURN_IF_ERROR(storage::DecodePageColumnF64(
        page.value_data, page.header.value_encoding, page.header.count,
        values.data()));
  }
  if (stats != nullptr) stats->tuples_scanned += p1 - p0;
  const bool need_sq = func == AggFunc::kVariance;
  double lo = vrange.active ? static_cast<double>(vrange.lo)
                            : -std::numeric_limits<double>::infinity();
  double hi = vrange.active ? static_cast<double>(vrange.hi)
                            : std::numeric_limits<double>::infinity();
  ScopedStageTimer timer(stages, Stage::kAggregate);
  timer.AddTuples(p1 - p0);
  for (size_t i = p0; i < p1; ++i) {
    double v = values[i];
    if (v < lo || v > hi) continue;
    accum->AddValue(v, need_sq);
  }
  return Status::Ok();
}

Status AggregateSlice(const storage::Page& page, size_t begin, size_t end,
                      const TimeRange& trange, const ValueRange& vrange,
                      AggFunc func, const PipelineOptions& opt,
                      AggAccum* accum, QueryStats* stats) {
  size_t p0 = 0, p1 = 0;
  ETSQP_RETURN_IF_ERROR(
      SlicePositions(page, begin, end, trange, opt, &p0, &p1, stats));
  return AggValues(page, p0, p1, vrange, func, opt, accum, stats);
}

Status AggregateSliceWindows(const storage::Page& page, size_t begin,
                             size_t end, const SlidingWindow& sw,
                             AggFunc func, const PipelineOptions& opt,
                             std::map<int64_t, AggAccum>* windows,
                             QueryStats* stats) {
  end = std::min<size_t>(end, page.header.count);
  if (begin >= end) return Status::Ok();

  metrics::StageBreakdown* stages = StagesOf(opt, stats);
  // Decode the slice's timestamps once; window boundaries are then binary
  // searches in the sorted array. (Constant-interval pages could skip this
  // via Proposition 4; the generic path decodes.)
  DecodedColumn times;
  ETSQP_RETURN_IF_ERROR(DecodeColumnRange(
      page.time_data.data(), page.time_data.size(),
      page.header.time_encoding, page.header.count, opt.strategy, opt.n_v,
      begin, end, &times, /*ordered=*/true, stages));
  if (stats != nullptr) stats->tuples_scanned += times.size();
  size_t n = times.size();
  if (n == 0) return Status::Ok();
  std::vector<int64_t> t(n);
  times.Materialize(t.data());

  int64_t first_k = sw.WindowIndex(t[0]);
  if (t[0] < sw.t_min) first_k = 0;  // values before t_min are excluded
  int64_t last_k = sw.WindowIndex(t[n - 1]);
  if (t[n - 1] < sw.t_min) return Status::Ok();

  size_t pos = 0;
  // Skip tuples before the first window. The fused reader's per-block
  // residual cache is shared across all windows of this slice.
  ValueColumnContext vctx;
  pos = std::lower_bound(t.begin(), t.end(), sw.t_min) - t.begin();
  for (int64_t k = first_k; k <= last_k && pos < n; ++k) {
    int64_t wend = sw.WindowStart(k + 1);
    size_t pend =
        std::lower_bound(t.begin() + pos, t.end(), wend) - t.begin();
    if (pend > pos) {
      AggAccum local;
      ETSQP_RETURN_IF_ERROR(AggValues(page, begin + pos, begin + pend,
                                      ValueRange{}, func, opt, &local, stats,
                                      &vctx));
      (*windows)[k].Merge(local);
      pos = pend;
    }
  }
  return Status::Ok();
}

Status AggregateFloatSliceWindows(const storage::Page& page, size_t begin,
                                  size_t end, const SlidingWindow& sw,
                                  AggFunc func, const PipelineOptions& opt,
                                  std::map<int64_t, FloatAggAccum>* windows,
                                  QueryStats* stats) {
  end = std::min<size_t>(end, page.header.count);
  if (begin >= end) return Status::Ok();
  metrics::StageBreakdown* stages = StagesOf(opt, stats);
  DecodedColumn times;
  ETSQP_RETURN_IF_ERROR(DecodeColumnRange(
      page.time_data.data(), page.time_data.size(),
      page.header.time_encoding, page.header.count, opt.strategy, opt.n_v,
      begin, end, &times, /*ordered=*/true, stages));
  size_t n = times.size();
  if (n == 0) return Status::Ok();
  std::vector<int64_t> t(n);
  times.Materialize(t.data());
  std::vector<double> values(page.header.count);
  {
    ScopedStageTimer timer(stages, Stage::kUnpack);
    timer.AddTuples(page.header.count);
    timer.AddBytes(page.value_data.size());
    ETSQP_RETURN_IF_ERROR(storage::DecodePageColumnF64(
        page.value_data, page.header.value_encoding, page.header.count,
        values.data()));
  }
  if (stats != nullptr) stats->tuples_scanned += 2 * n;
  const bool need_sq = func == AggFunc::kVariance;
  ScopedStageTimer timer(stages, Stage::kAggregate);
  size_t pos = std::lower_bound(t.begin(), t.end(), sw.t_min) - t.begin();
  timer.AddTuples(n - pos);
  while (pos < n) {
    int64_t k = sw.WindowIndex(t[pos]);
    int64_t wend = sw.WindowStart(k + 1);
    size_t pend =
        std::lower_bound(t.begin() + pos, t.end(), wend) - t.begin();
    FloatAggAccum& acc = (*windows)[k];
    for (size_t i = pos; i < pend; ++i) {
      acc.AddValue(values[begin + i], need_sq);
    }
    pos = pend;
  }
  return Status::Ok();
}

Status MaterializeSlice(const storage::Page& page, size_t begin, size_t end,
                        const TimeRange& trange, const ValueRange& vrange,
                        const PipelineOptions& opt,
                        std::vector<int64_t>* times,
                        std::vector<int64_t>* values, QueryStats* stats) {
  size_t p0 = 0, p1 = 0;
  ETSQP_RETURN_IF_ERROR(
      SlicePositions(page, begin, end, trange, opt, &p0, &p1, stats));
  if (p0 >= p1) return Status::Ok();
  metrics::StageBreakdown* stages = StagesOf(opt, stats);

  DecodedColumn tcol, vcol;
  ETSQP_RETURN_IF_ERROR(DecodeColumnRange(
      page.time_data.data(), page.time_data.size(),
      page.header.time_encoding, page.header.count, opt.strategy, opt.n_v,
      p0, p1, &tcol, /*ordered=*/true, stages));
  ETSQP_RETURN_IF_ERROR(DecodeColumnRange(
      page.value_data.data(), page.value_data.size(),
      page.header.value_encoding, page.header.count, opt.strategy, opt.n_v,
      p0, p1, &vcol, /*ordered=*/true, stages));
  if (stats != nullptr) stats->tuples_scanned += tcol.size() + vcol.size();

  size_t n = p1 - p0;
  if (!vrange.active) {
    // Bulk path: vectorized widening into the output tails. Emission is
    // merge-stage work (it feeds the stitching/merge nodes of Figure 9).
    ScopedStageTimer timer(stages, Stage::kMerge);
    timer.AddTuples(n);
    size_t t_at = times->size();
    size_t v_at = values->size();
    times->resize(t_at + n);
    values->resize(v_at + n);
    tcol.Materialize(times->data() + t_at);
    vcol.Materialize(values->data() + v_at);
    return Status::Ok();
  }
  ScopedStageTimer timer(stages, Stage::kFilter);
  timer.AddTuples(n);
  times->reserve(times->size() + n);
  values->reserve(values->size() + n);
  for (size_t i = 0; i < n; ++i) {
    int64_t v = vcol.Get(i);
    if (!vrange.Contains(v)) continue;
    times->push_back(tcol.Get(i));
    values->push_back(v);
  }
  return Status::Ok();
}

PipelineOptions PipelineOptions::Etsqp(int threads) {
  PipelineOptions o;
  o.strategy = DecodeStrategy::kEtsqp;
  o.prune = false;
  o.fusion = true;
  o.threads = threads;
  // The integrated engine plans per page class through the registry; the
  // forced-strategy baselines below (and WithStrategy) stay pinned.
  o.use_registry = true;
  return o;
}

PipelineOptions PipelineOptions::EtsqpPrune(int threads) {
  return Etsqp(threads).WithPrune(true);
}

PipelineOptions PipelineOptions::Serial() {
  PipelineOptions o;
  o.strategy = DecodeStrategy::kSerial;
  o.prune = false;
  o.fusion = false;
  o.threads = 1;
  return o;
}

PipelineOptions PipelineOptions::Sboost(int threads) {
  PipelineOptions o;
  o.strategy = DecodeStrategy::kSboost;
  o.prune = false;
  o.fusion = false;
  o.threads = threads;
  return o;
}

PipelineOptions PipelineOptions::FastLanes(int threads) {
  PipelineOptions o;
  o.strategy = DecodeStrategy::kFastLanes;
  o.prune = false;
  o.fusion = false;
  o.threads = threads;
  return o;
}

}  // namespace etsqp::exec
