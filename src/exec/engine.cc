#include "exec/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>

#include "common/bit_util.h"
#include "common/metrics.h"
#include "encoding/delta_rle.h"
#include "exec/explain.h"
#include "exec/fusion.h"
#include "exec/pipe_builder.h"
#include "exec/pipeline_job.h"
#include "exec/tail_kernel.h"
#include "simd/filter_simd.h"
#include "simd/merge_simd.h"
#include "storage/page_builder.h"
#include "storage/pruning_index.h"

namespace etsqp::exec {

namespace {

using metrics::ScopedStageTimer;
using metrics::Stage;

metrics::StageBreakdown* StagesOf(const PipelineOptions& opt,
                                  QueryStats* stats) {
  return (opt.collect_stats && stats != nullptr) ? &stats->stages : nullptr;
}

/// Realizes one job's registry decision: the effective options the kernels
/// run with, plus the timing needed to score the prediction afterwards.
/// Jobs without a decision (registry off, or nothing schedulable) run the
/// engine's base options untouched.
struct JobSchedule {
  PipelineOptions options;
  const ScheduleDecision* decision = nullptr;
  uint64_t start_nanos = 0;

  JobSchedule(const PipelineOptions& base, const PipelineSpec& spec,
              const PipeJob& job)
      : options(base) {
    if (job.decision >= 0) {
      decision = &spec.decisions[job.decision];
      options = ApplyDecision(base, *decision);
    }
    if (decision != nullptr && base.collect_stats) {
      start_nanos = metrics::NowNanos();
    }
  }

  /// Call after the kernel, before merging `local` into the run stats.
  void Note(const PipeJob& job, QueryStats* local) const {
    if (decision == nullptr || start_nanos == 0) return;
    NoteDecisionOutcome(*decision, job.end - job.begin,
                        metrics::NowNanos() - start_nanos, local);
  }
};

/// The merge stage's planned kernel: the registry decision (for EXPLAIN
/// and outcome scoring) plus the datapath the merge kernels run on. When
/// the registry did not plan the stage, the datapath follows the engine's
/// pinned strategy (kSerial pins the scalar reference kernels).
struct MergeSchedule {
  const ScheduleDecision* decision = nullptr;
  simd::MergeIsa isa = simd::MergeIsa::kScalar;

  MergeSchedule(const PipelineOptions& base, const PipelineSpec& spec) {
    if (spec.merge_decision >= 0) {
      decision = &spec.decisions[spec.merge_decision];
      isa = MergeEntryIsa(decision->entry->name());
    } else if (base.strategy != DecodeStrategy::kSerial) {
      isa = simd::BestMergeIsa();
    }
  }
};

/// Pipe compilation for the file-backed path: header-only pruning decides
/// which pages to fetch at all; surviving pages become whole-page jobs
/// (slicing would defeat the one-fetch-per-page buffer pool discipline).
Result<PipelineSpec> BuildFilePipeline(const LogicalPlan& plan,
                                       storage::FileBackedStore* store,
                                       const PipelineOptions& options) {
  if (plan.kind != LogicalPlan::Kind::kAggregate) {
    return Status::NotSupported("file-backed path supports aggregation only");
  }
  Result<const storage::FileBackedStore::SeriesIndex*> series =
      store->GetSeries(plan.series);
  if (!series.ok()) return series.status();
  const auto& refs = series.value()->pages;

  TimeRange trange = plan.time_filter;
  if (plan.window.active) trange.lo = std::max(trange.lo, plan.window.t_min);

  PipelineSpec spec;
  DecisionCache decisions(plan, options, &spec);
  for (size_t p = 0; p < refs.size(); ++p) {
    const storage::PageHeader& h = refs[p].header;
    ++spec.plan_stats.pages_total;
    spec.plan_stats.tuples_in_pages += h.count;
    if (!trange.Overlaps(h.min_time, h.max_time)) {
      ++spec.plan_stats.pages_pruned;
      continue;
    }
    if (options.prune && plan.value_filter.active) {
      // Float headers carry bit-cast doubles: the compare runs in the
      // shared key domain (NaN bounds make the page unprunable), never on
      // the raw int64 bit patterns.
      const bool is_float = enc::IsFloatEncoding(h.value_encoding);
      int64_t lo, hi;
      int64_t q_lo = plan.value_filter.lo, q_hi = plan.value_filter.hi;
      if (is_float) {
        q_lo = storage::OrderedValueKey(
            static_cast<double>(plan.value_filter.lo));
        q_hi = storage::OrderedValueKey(
            static_cast<double>(plan.value_filter.hi));
      }
      if (storage::HeaderValueKeys(h, is_float, &lo, &hi) &&
          (hi < q_lo || lo > q_hi)) {
        ++spec.plan_stats.pages_pruned;
        continue;
      }
    }
    spec.plan_stats.bytes_loaded += h.time_bytes + h.value_bytes;
    int decision = decisions.Decide(ClassifyPage(h));
    decisions.Cover(decision, 1, h.count);
    spec.jobs.push_back({0, p, 0, h.count, false, decision});
  }
  return spec;
}

/// Per-input materialized tuples, stitched in storage order.
struct Materialized {
  std::vector<int64_t> times;
  std::vector<int64_t> values;
};

/// Decodes a tombstone-masked page in full and drops deleted timestamps in
/// place. Survivors drain through the scalar tail kernels — correctness
/// over speed on the (transient) partially deleted page; the next
/// compaction pass erases the mask and restores the vectorized path.
Status DecodeMaskedPage(const storage::Page& page,
                        const std::vector<storage::TimeInterval>& tombstones,
                        bool is_float, std::vector<int64_t>* times,
                        std::vector<int64_t>* values,
                        std::vector<double>* values_f64, uint64_t* dropped) {
  const uint32_t n = page.header.count;
  times->resize(n);
  ETSQP_RETURN_IF_ERROR(storage::DecodePageColumn(
      page.time_data, page.header.time_encoding, n, times->data()));
  if (is_float) {
    values_f64->resize(n);
    ETSQP_RETURN_IF_ERROR(storage::DecodePageColumnF64(
        page.value_data, page.header.value_encoding, n, values_f64->data()));
  } else {
    values->resize(n);
    ETSQP_RETURN_IF_ERROR(storage::DecodePageColumn(
        page.value_data, page.header.value_encoding, n, values->data()));
  }
  // Two-pointer filter: page times ascend, tombstones are sorted/disjoint.
  size_t w = 0, ti = 0;
  for (size_t i = 0; i < n; ++i) {
    int64_t t = (*times)[i];
    while (ti < tombstones.size() && tombstones[ti].hi < t) ++ti;
    if (ti < tombstones.size() && t >= tombstones[ti].lo) continue;
    (*times)[w] = t;
    if (is_float) {
      (*values_f64)[w] = (*values_f64)[i];
    } else {
      (*values)[w] = (*values)[i];
    }
    ++w;
  }
  *dropped += n - w;
  times->resize(w);
  if (is_float) {
    values_f64->resize(w);
  } else {
    values->resize(w);
  }
  return Status::Ok();
}

/// Runs MaterializeSlice jobs (plus the scalar tail legs) for one plan and
/// returns per-input tuple streams in time order.
Status MaterializeInputs(const LogicalPlan& plan,
                         const std::vector<storage::SeriesSnapshot>& snaps,
                         const PipelineOptions& options,
                         const PipelineSpec& spec,
                         std::vector<Materialized>* inputs,
                         QueryStats* stats) {
  // Per-job local buffers, stitched by the merge step to preserve order.
  std::vector<Materialized> locals(spec.jobs.size());
  std::vector<QueryStats> job_stats(spec.jobs.size());

  PipelineJobSet set;
  set.num_jobs = spec.jobs.size();
  set.job = [&](size_t i) -> Status {
    const PipeJob& job = spec.jobs[i];
    const storage::SeriesSnapshot& snap = snaps[job.input];
    JobSchedule sched(options, spec, job);
    Status st;
    if (job.tail) {
      if (snap.is_float) {
        return Status::NotSupported("materialize on float series tail");
      }
      st = TailMaterialize(snap.tail_times.data(), snap.tail_values.data(),
                           snap.tail_times.size(), plan.time_filter,
                           plan.value_filter, sched.options, &locals[i].times,
                           &locals[i].values, &job_stats[i]);
    } else if (job.masked) {
      if (snap.is_float) {
        return Status::NotSupported("materialize on masked float series");
      }
      std::vector<int64_t> mt, mv;
      std::vector<double> mfv;
      uint64_t dropped = 0;
      st = DecodeMaskedPage(*snap.pages[job.page_index], snap.tombstones,
                            false, &mt, &mv, &mfv, &dropped);
      if (st.ok()) {
        st = TailMaterialize(mt.data(), mv.data(), mt.size(),
                             plan.time_filter, plan.value_filter,
                             sched.options, &locals[i].times,
                             &locals[i].values, &job_stats[i]);
      }
      job_stats[i].tail_tuples_scanned = 0;  // page tuples, not tail tuples
      job_stats[i].tuples_scanned += dropped;
      job_stats[i].deleted_tuples_masked += dropped;
    } else {
      const storage::Page& page = *snap.pages[job.page_index];
      st = MaterializeSlice(page, job.begin, job.end, plan.time_filter,
                            plan.value_filter, sched.options, &locals[i].times,
                            &locals[i].values, &job_stats[i]);
    }
    sched.Note(job, &job_stats[i]);
    return st;
  };
  set.merge = [&]() -> Status {
    // Jobs were emitted in (input, page, slice) order; concatenation keeps
    // time order within each input.
    for (size_t i = 0; i < spec.jobs.size(); ++i) {
      stats->Merge(job_stats[i]);
      Materialized& dst = (*inputs)[spec.jobs[i].input];
      dst.times.insert(dst.times.end(), locals[i].times.begin(),
                       locals[i].times.end());
      dst.values.insert(dst.values.end(), locals[i].values.begin(),
                        locals[i].values.end());
    }
    return Status::Ok();
  };
  return RunPipelineJobs(set, options, stats);
}

/// Resolves the plan's inputs through the handle (memory store or the db
/// layer's cross-shard resolver — same code path either way).
Result<std::vector<storage::SeriesSnapshot>> ResolveHandle(
    const LogicalPlan& plan, const StoreHandle& store) {
  return ResolveInputs(
      plan, [&store](const std::string& name) { return store.Snapshot(name); });
}

}  // namespace

Result<QueryResult> Engine::Execute(const LogicalPlan& plan,
                                    StoreHandle store) const {
  if (plan.explain != LogicalPlan::ExplainMode::kNone) {
    return ExecuteExplain(plan, store);
  }
  const bool timed = options_.collect_stats;
  const uint64_t t0 = timed ? metrics::NowNanos() : 0;
  Result<QueryResult> result =
      store.file() != nullptr
          ? ExecuteFile(plan, store.file())
          : (store.resolves()
                 ? ExecuteMemory(plan, store)
                 : Result<QueryResult>(Status::Internal("null store handle")));
  if (timed && result.ok()) {
    result.value().stats.wall_nanos = metrics::NowNanos() - t0;
    result.value().stats.threads = options_.threads;
  }
  return result;
}

Result<QueryResult> Engine::ExecuteExplain(const LogicalPlan& plan,
                                           StoreHandle store) const {
  LogicalPlan inner = plan;
  inner.explain = LogicalPlan::ExplainMode::kNone;
  // The rendered tree comes from Pipe compilation either way; it is
  // header-only work, so re-running it for ANALYZE costs nothing visible.
  Result<PipelineSpec> spec = [&]() -> Result<PipelineSpec> {
    if (store.file() != nullptr) {
      return BuildFilePipeline(inner, store.file(), options_);
    }
    if (!store.resolves()) return Status::Internal("null store handle");
    Result<std::vector<storage::SeriesSnapshot>> snaps =
        ResolveHandle(inner, store);
    if (!snaps.ok()) return snaps.status();
    return BuildPipeline(inner, snaps.value(), options_);
  }();
  if (!spec.ok()) return spec.status();

  if (plan.explain == LogicalPlan::ExplainMode::kPlan) {
    QueryResult out;
    out.stats = spec.value().plan_stats;
    out.explain_text = RenderExplain(inner, options_, spec.value());
    return out;
  }
  // EXPLAIN ANALYZE: run with stats collection forced on.
  Engine analyzed(PipelineOptions(options_).WithStats(true));
  Result<QueryResult> run = analyzed.Execute(inner, store);
  if (!run.ok()) return run.status();
  QueryResult out = std::move(run.value());
  out.explain_text = RenderExplainAnalyze(inner, analyzed.options(),
                                          spec.value(), out.stats);
  return out;
}

Result<QueryResult> Engine::ExecuteMemory(const LogicalPlan& plan,
                                          const StoreHandle& store) const {
  switch (plan.kind) {
    case LogicalPlan::Kind::kAggregate:
      return ExecuteAggregate(plan, store);
    case LogicalPlan::Kind::kSelect:
      return ExecuteSelect(plan, store);
    case LogicalPlan::Kind::kProjectBinary:
    case LogicalPlan::Kind::kUnion:
    case LogicalPlan::Kind::kJoin:
      return ExecuteBinary(plan, store);
    case LogicalPlan::Kind::kCorrelate:
      return ExecuteCorrelate(plan, store);
  }
  return Status::Internal("unknown plan kind");
}

Result<QueryResult> Engine::ExecuteFile(
    const LogicalPlan& plan, storage::FileBackedStore* store) const {
  Result<PipelineSpec> spec = BuildFilePipeline(plan, store, options_);
  if (!spec.ok()) return spec.status();
  const std::vector<PipeJob>& jobs = spec.value().jobs;

  QueryResult result;
  result.stats = spec.value().plan_stats;
  std::mutex mu;
  std::map<int64_t, AggAccum> windows;
  AggAccum total;
  QueryStats run_stats;

  PipelineJobSet set;
  set.num_jobs = jobs.size();
  set.job = [&](size_t i) -> Status {
    const PipeJob& job = jobs[i];
    JobSchedule sched(options_, spec.value(), job);
    QueryStats local_stats;
    Result<std::shared_ptr<const storage::Page>> page = [&] {
      ScopedStageTimer fetch(StagesOf(options_, &local_stats),
                             Stage::kPageFetch);
      auto loaded = store->LoadPage(plan.series, job.page_index);
      if (loaded.ok()) {
        fetch.AddTuples(loaded.value()->header.count);
        fetch.AddBytes(loaded.value()->encoded_bytes());
      }
      return loaded;
    }();
    Status st = page.ok() ? Status::Ok() : page.status();
    std::map<int64_t, AggAccum> local_windows;
    AggAccum local;
    if (st.ok()) {
      const storage::Page& pg = *page.value();
      st = plan.window.active
               ? AggregateSliceWindows(pg, 0, pg.header.count, plan.window,
                                       plan.func, sched.options,
                                       &local_windows, &local_stats)
               : AggregateSlice(pg, 0, pg.header.count, plan.time_filter,
                                plan.value_filter, plan.func, sched.options,
                                &local, &local_stats);
    }
    sched.Note(job, &local_stats);
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& [k, acc] : local_windows) windows[k].Merge(acc);
    total.Merge(local);
    run_stats.Merge(local_stats);
    return st;
  };
  set.merge = [&]() -> Status {
    result.stats.Merge(run_stats);
    ScopedStageTimer merge_timer(StagesOf(options_, &result.stats),
                                 Stage::kMerge);
    if (plan.window.active) {
      result.column_names = {"window_start", AggFuncName(plan.func)};
      result.columns.assign(2, {});
      for (const auto& [k, acc] : windows) {
        double v = 0;
        Status st = acc.Finalize(plan.func, &v);
        if (st.code() == StatusCode::kOverflow) return st;
        if (!st.ok()) continue;
        result.columns[0].push_back(
            static_cast<double>(plan.window.WindowStart(k)));
        result.columns[1].push_back(v);
      }
    } else {
      result.column_names = {AggFuncName(plan.func)};
      result.columns.assign(1, {});
      double v = 0;
      Status st = total.Finalize(plan.func, &v);
      if (st.code() == StatusCode::kOverflow) return st;
      if (st.ok()) result.columns[0].push_back(v);
    }
    return Status::Ok();
  };
  ETSQP_RETURN_IF_ERROR(RunPipelineJobs(set, options_, &result.stats));
  result.stats.result_tuples = result.num_rows();
  return result;
}

Result<QueryResult> Engine::ExecuteAggregate(const LogicalPlan& plan,
                                             const StoreHandle& store) const {
  Result<std::vector<storage::SeriesSnapshot>> snaps =
      ResolveHandle(plan, store);
  if (!snaps.ok()) return snaps.status();
  Result<PipelineSpec> spec = BuildPipeline(plan, snaps.value(), options_);
  if (!spec.ok()) return spec.status();
  const storage::SeriesSnapshot& snap = snaps.value()[0];
  const auto& pages = snap.pages;

  QueryResult result;
  result.stats = spec.value().plan_stats;

  // Float-valued series take the double pipeline (XOR-pattern codecs).
  const bool is_float = snap.is_float;

  std::mutex mu;
  std::map<int64_t, AggAccum> windows;  // window index -> accum
  std::map<int64_t, FloatAggAccum> fwindows;
  AggAccum total;
  FloatAggAccum ftotal;
  QueryStats run_stats;

  PipelineJobSet set;
  set.num_jobs = spec.value().jobs.size();
  set.job = [&](size_t i) -> Status {
    const PipeJob& job = spec.value().jobs[i];
    JobSchedule sched(options_, spec.value(), job);
    QueryStats local_stats;
    std::map<int64_t, AggAccum> local_windows;
    std::map<int64_t, FloatAggAccum> local_fwindows;
    AggAccum local;
    FloatAggAccum flocal;
    Status st;
    if (job.tail) {
      // Unsealed tail leg: scalar kernels over the snapshot's raw arrays.
      if (is_float && plan.window.active) {
        st = TailAggregateWindowsF64(snap.tail_times.data(),
                                     snap.tail_values_f64.data(),
                                     snap.tail_times.size(), plan.window,
                                     plan.func, sched.options,
                                     &local_fwindows, &local_stats);
      } else if (is_float) {
        st = TailAggregateF64(snap.tail_times.data(),
                              snap.tail_values_f64.data(),
                              snap.tail_times.size(), plan.time_filter,
                              plan.value_filter, plan.func, sched.options,
                              &flocal, &local_stats);
      } else if (plan.window.active) {
        st = TailAggregateWindows(snap.tail_times.data(),
                                  snap.tail_values.data(),
                                  snap.tail_times.size(), plan.window,
                                  plan.func, sched.options, &local_windows,
                                  &local_stats);
      } else {
        st = TailAggregate(snap.tail_times.data(), snap.tail_values.data(),
                           snap.tail_times.size(), plan.time_filter,
                           plan.value_filter, plan.func, sched.options,
                           &local, &local_stats);
      }
    } else if (job.masked) {
      // Tombstone-masked page: decode, drop deleted timestamps, drain the
      // survivors through the scalar kernels.
      std::vector<int64_t> mt, mv;
      std::vector<double> mfv;
      uint64_t dropped = 0;
      st = DecodeMaskedPage(*pages[job.page_index], snap.tombstones, is_float,
                            &mt, &mv, &mfv, &dropped);
      if (st.ok()) {
        if (is_float && plan.window.active) {
          st = TailAggregateWindowsF64(mt.data(), mfv.data(), mt.size(),
                                       plan.window, plan.func, sched.options,
                                       &local_fwindows, &local_stats);
        } else if (is_float) {
          st = TailAggregateF64(mt.data(), mfv.data(), mt.size(),
                                plan.time_filter, plan.value_filter, plan.func,
                                sched.options, &flocal, &local_stats);
        } else if (plan.window.active) {
          st = TailAggregateWindows(mt.data(), mv.data(), mt.size(),
                                    plan.window, plan.func, sched.options,
                                    &local_windows, &local_stats);
        } else {
          st = TailAggregate(mt.data(), mv.data(), mt.size(), plan.time_filter,
                             plan.value_filter, plan.func, sched.options,
                             &local, &local_stats);
        }
      }
      local_stats.tail_tuples_scanned = 0;  // page tuples, not tail tuples
      local_stats.tuples_scanned += dropped;
      local_stats.deleted_tuples_masked += dropped;
    } else {
      const storage::Page& page = *pages[job.page_index];
      if (is_float && plan.window.active) {
        st = AggregateFloatSliceWindows(page, job.begin, job.end, plan.window,
                                        plan.func, sched.options,
                                        &local_fwindows, &local_stats);
      } else if (is_float) {
        st = AggregateFloatSlice(page, job.begin, job.end, plan.time_filter,
                                 plan.value_filter, plan.func, sched.options,
                                 &flocal, &local_stats);
      } else if (plan.window.active) {
        st = AggregateSliceWindows(page, job.begin, job.end, plan.window,
                                   plan.func, sched.options, &local_windows,
                                   &local_stats);
      } else {
        st = AggregateSlice(page, job.begin, job.end, plan.time_filter,
                            plan.value_filter, plan.func, sched.options,
                            &local, &local_stats);
      }
    }
    sched.Note(job, &local_stats);
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& [k, acc] : local_windows) windows[k].Merge(acc);
    for (const auto& [k, acc] : local_fwindows) fwindows[k].Merge(acc);
    total.Merge(local);
    ftotal.Merge(flocal);
    run_stats.Merge(local_stats);
    return st;
  };
  set.merge = [&]() -> Status {
    result.stats.Merge(run_stats);
    ScopedStageTimer merge_timer(StagesOf(options_, &result.stats),
                                 Stage::kMerge);
    if (plan.window.active) {
      result.column_names = {"window_start", AggFuncName(plan.func)};
      result.columns.assign(2, {});
      auto emit = [&](int64_t k, double v) {
        result.columns[0].push_back(
            static_cast<double>(plan.window.WindowStart(k)));
        result.columns[1].push_back(v);
      };
      if (is_float) {
        for (const auto& [k, acc] : fwindows) {
          double v = 0;
          if (acc.Finalize(plan.func, &v).ok()) emit(k, v);
        }
      } else {
        for (const auto& [k, acc] : windows) {
          double v = 0;
          Status st = acc.Finalize(plan.func, &v);
          if (st.code() == StatusCode::kOverflow) return st;
          if (!st.ok()) continue;  // empty window
          emit(k, v);
        }
      }
    } else {
      result.column_names = {AggFuncName(plan.func)};
      result.columns.assign(1, {});
      double v = 0;
      Status st = is_float ? ftotal.Finalize(plan.func, &v)
                           : total.Finalize(plan.func, &v);
      if (st.code() == StatusCode::kOverflow) return st;
      if (st.ok()) result.columns[0].push_back(v);
    }
    return Status::Ok();
  };
  ETSQP_RETURN_IF_ERROR(RunPipelineJobs(set, options_, &result.stats));
  result.stats.result_tuples = result.num_rows();
  return result;
}

Result<QueryResult> Engine::ExecuteSelect(const LogicalPlan& plan,
                                          const StoreHandle& store) const {
  Result<std::vector<storage::SeriesSnapshot>> snaps =
      ResolveHandle(plan, store);
  if (!snaps.ok()) return snaps.status();
  Result<PipelineSpec> spec = BuildPipeline(plan, snaps.value(), options_);
  if (!spec.ok()) return spec.status();
  QueryResult result;
  result.stats = spec.value().plan_stats;

  std::vector<Materialized> inputs(2);
  ETSQP_RETURN_IF_ERROR(MaterializeInputs(plan, snaps.value(), options_,
                                          spec.value(), &inputs,
                                          &result.stats));
  const Materialized& m = inputs[0];
  result.column_names = {"time", "value"};
  result.columns.assign(2, {});
  result.columns[0].assign(m.times.begin(), m.times.end());
  result.columns[1].assign(m.values.begin(), m.values.end());
  result.stats.result_tuples = result.num_rows();
  return result;
}

Result<QueryResult> Engine::ExecuteBinary(const LogicalPlan& plan,
                                          const StoreHandle& store) const {
  Result<std::vector<storage::SeriesSnapshot>> snaps =
      ResolveHandle(plan, store);
  if (!snaps.ok()) return snaps.status();
  Result<PipelineSpec> spec = BuildPipeline(plan, snaps.value(), options_);
  if (!spec.ok()) return spec.status();
  QueryResult result;
  result.stats = spec.value().plan_stats;

  std::vector<Materialized> inputs(2);
  ETSQP_RETURN_IF_ERROR(MaterializeInputs(plan, snaps.value(), options_,
                                          spec.value(), &inputs,
                                          &result.stats));
  const Materialized& l = inputs[0];
  const Materialized& r = inputs[1];
  const size_t nl = l.times.size();
  const size_t nr = r.times.size();

  // The merge stage runs as its own (single) pipeline job so it lands in
  // the job scheduler, carries a per-stage `merge` ExecStats breakout, and
  // scores its registry decision like any decode job.
  MergeSchedule msched(options_, spec.value());
  QueryStats merge_stats;
  PipelineJobSet set;
  set.num_jobs = 1;
  set.job = [&](size_t) -> Status {
    const uint64_t t0 = (msched.decision != nullptr && options_.collect_stats)
                            ? metrics::NowNanos()
                            : 0;
    {
      ScopedStageTimer merge_timer(StagesOf(options_, &merge_stats),
                                   Stage::kMerge);
      merge_timer.AddTuples(nl + nr);
      if (plan.kind == LogicalPlan::Kind::kUnion) {
        // Q5: series concatenation merged by time (Eq. 5).
        result.column_names = {"time", "value"};
        result.columns.assign(2, {});
        std::vector<int64_t> out_t(nl + nr);
        std::vector<int64_t> out_v(nl + nr);
        size_t m = simd::MergeUnionInt64(l.times.data(), l.values.data(), nl,
                                         r.times.data(), r.values.data(), nr,
                                         out_t.data(), out_v.data(),
                                         msched.isa);
        result.columns[0].assign(out_t.begin(), out_t.begin() + m);
        result.columns[1].assign(out_v.begin(), out_v.begin() + m);
      } else {
        // Q4/Q6: natural join on timestamps (Eq. 6). The intersection
        // kernel emits aligned index pairs (k-th match on each side), then
        // the matched tuples project in time order.
        bool project = plan.kind == LogicalPlan::Kind::kProjectBinary;
        const size_t cap = std::min(nl, nr);
        std::vector<uint32_t> il(cap);
        std::vector<uint32_t> ir(cap);
        size_t matches =
            simd::IntersectIndicesInt64(l.times.data(), nl, r.times.data(),
                                        nr, il.data(), ir.data(), msched.isa);
        if (project) {
          result.column_names = {"time", "expr"};
          result.columns.assign(2, {});
        } else {
          result.column_names = {"time", "left", "right"};
          result.columns.assign(3, {});
        }
        for (auto& col : result.columns) col.reserve(matches);
        auto inter_ok = [&plan](int64_t a, int64_t b) {
          switch (plan.inter_column_op) {
            case '<':
              return a < b;
            case '>':
              return a > b;
            case '=':
              return a == b;
            default:
              return true;
          }
        };
        for (size_t k = 0; k < matches; ++k) {
          int64_t a = l.values[il[k]];
          int64_t b = r.values[ir[k]];
          if (!inter_ok(a, b)) continue;  // Eq. 3: filter on decoded vectors
          result.columns[0].push_back(static_cast<double>(l.times[il[k]]));
          if (project) {
            int64_t v = plan.binary_op == '-'   ? a - b
                        : plan.binary_op == '*' ? a * b
                                                : a + b;
            result.columns[1].push_back(static_cast<double>(v));
          } else {
            result.columns[1].push_back(static_cast<double>(a));
            result.columns[2].push_back(static_cast<double>(b));
          }
        }
      }
    }
    if (t0 != 0) {
      NoteDecisionOutcome(*msched.decision, nl + nr,
                          metrics::NowNanos() - t0, &merge_stats);
    }
    return Status::Ok();
  };
  set.merge = [&]() -> Status {
    result.stats.Merge(merge_stats);
    return Status::Ok();
  };
  ETSQP_RETURN_IF_ERROR(RunPipelineJobs(set, options_, &result.stats));
  result.stats.result_tuples = result.num_rows();
  return result;
}

namespace {

/// Pearson correlation / covariance accumulator over aligned pairs.
struct CorrAccum {
  __int128 sum_a = 0;
  __int128 sum_b = 0;
  __int128 sum_a2 = 0;
  __int128 sum_b2 = 0;
  __int128 sum_ab = 0;
  uint64_t n = 0;

  void Finish(QueryResult* result) const {
    result->column_names = {"corr", "cov", "n"};
    result->columns.assign(3, {});
    if (n == 0) return;
    double dn = static_cast<double>(n);
    double ma = static_cast<double>(sum_a) / dn;
    double mb = static_cast<double>(sum_b) / dn;
    double cov = static_cast<double>(sum_ab) / dn - ma * mb;
    double va = static_cast<double>(sum_a2) / dn - ma * ma;
    double vb = static_cast<double>(sum_b2) / dn - mb * mb;
    double denom = std::sqrt(va) * std::sqrt(vb);
    result->columns[0].push_back(denom > 0 ? cov / denom : 0.0);
    result->columns[1].push_back(cov);
    result->columns[2].push_back(dn);
  }
};

/// True when the two series share identical page layout and timestamps and
/// both value columns are Delta-RLE — the Section IV fused cross-product
/// applies page by page, no decoding at all. Unsealed tails are raw, so
/// the fused path requires both tails empty (a Flush, or quiesced ingest).
bool FusedCorrApplies(const storage::SeriesSnapshot& a,
                      const storage::SeriesSnapshot& b) {
  if (a.has_tail() || b.has_tail()) return false;
  // Tombstones invalidate the closed-form sums; the general path masks.
  if (!a.tombstones.empty() || !b.tombstones.empty()) return false;
  if (a.pages.size() != b.pages.size()) return false;
  for (size_t p = 0; p < a.pages.size(); ++p) {
    const storage::PageHeader& ha = a.pages[p]->header;
    const storage::PageHeader& hb = b.pages[p]->header;
    if (ha.count != hb.count || ha.min_time != hb.min_time ||
        ha.max_time != hb.max_time ||
        ha.value_encoding != enc::ColumnEncoding::kDeltaRle ||
        hb.value_encoding != enc::ColumnEncoding::kDeltaRle ||
        ha.time_bytes != hb.time_bytes) {
      return false;
    }
    // Equal encoded time columns <=> equal timestamps (encoding is a
    // deterministic function of the series).
    if (std::memcmp(a.pages[p]->time_data.data(),
                    b.pages[p]->time_data.data(), ha.time_bytes) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<QueryResult> Engine::ExecuteCorrelate(const LogicalPlan& plan,
                                             const StoreHandle& store) const {
  Result<std::vector<storage::SeriesSnapshot>> snaps =
      ResolveHandle(plan, store);
  if (!snaps.ok()) return snaps.status();

  QueryResult result;
  CorrAccum accum;

  const bool no_filters =
      plan.time_filter.IsUniverse() && !plan.value_filter.active;
  if (options_.fusion && options_.strategy == DecodeStrategy::kEtsqp &&
      no_filters && FusedCorrApplies(snaps.value()[0], snaps.value()[1])) {
    // Section IV fused path: per page pair, closed-form sums over the
    // <delta, run> structure — SUM, SUM^2 (FusedAggDeltaRle) and the
    // cross-product polynomial (FusedCrossDeltaRle). No value decoding.
    std::mutex mu;
    const auto& pa = snaps.value()[0].pages;
    const auto& pb = snaps.value()[1].pages;
    PipelineJobSet set;
    set.num_jobs = pa.size();
    set.job = [&](size_t p) -> Status {
      auto ca = enc::DeltaRleColumn::Parse(pa[p]->value_data.data(),
                                           pa[p]->value_data.size());
      auto cb = enc::DeltaRleColumn::Parse(pb[p]->value_data.data(),
                                           pb[p]->value_data.size());
      Status st;
      CorrAccum local;
      if (!ca.ok()) {
        st = ca.status();
      } else if (!cb.ok()) {
        st = cb.status();
      } else {
        uint32_t n = ca.value().count();
        DeltaRleAggregates aa, ab;
        __int128 cross = 0;
        st = FusedAggDeltaRle(ca.value(), 0, n, true, &aa);
        if (st.ok()) st = FusedAggDeltaRle(cb.value(), 0, n, true, &ab);
        if (st.ok()) {
          st = FusedCrossDeltaRle(ca.value(), cb.value(), 0, n, &cross);
        }
        if (st.ok()) {
          local.sum_a = aa.sum;
          local.sum_b = ab.sum;
          local.sum_a2 = aa.sum_sq;
          local.sum_b2 = ab.sum_sq;
          local.sum_ab = cross;
          local.n = aa.count;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      accum.sum_a += local.sum_a;
      accum.sum_b += local.sum_b;
      accum.sum_a2 += local.sum_a2;
      accum.sum_b2 += local.sum_b2;
      accum.sum_ab += local.sum_ab;
      accum.n += local.n;
      result.stats.pages_total += 2;
      result.stats.tuples_in_pages += 2 * pa[p]->header.count;
      result.stats.bytes_loaded +=
          pa[p]->encoded_bytes() + pb[p]->encoded_bytes();
      return st;
    };
    set.merge = [&]() -> Status {
      accum.Finish(&result);
      return Status::Ok();
    };
    ETSQP_RETURN_IF_ERROR(RunPipelineJobs(set, options_, &result.stats));
    result.stats.result_tuples = result.num_rows();
    return result;
  }

  // General path: materialize, join on time, accumulate.
  Result<PipelineSpec> spec = BuildPipeline(plan, snaps.value(), options_);
  if (!spec.ok()) return spec.status();
  result.stats = spec.value().plan_stats;
  std::vector<Materialized> inputs(2);
  ETSQP_RETURN_IF_ERROR(MaterializeInputs(plan, snaps.value(), options_,
                                          spec.value(), &inputs,
                                          &result.stats));
  const Materialized& l = inputs[0];
  const Materialized& r = inputs[1];
  const size_t nl = l.times.size();
  const size_t nr = r.times.size();
  MergeSchedule msched(options_, spec.value());
  {
    const uint64_t t0 = (msched.decision != nullptr && options_.collect_stats)
                            ? metrics::NowNanos()
                            : 0;
    {
      ScopedStageTimer merge_timer(StagesOf(options_, &result.stats),
                                   Stage::kMerge);
      merge_timer.AddTuples(nl + nr);
      const size_t cap = std::min(nl, nr);
      std::vector<uint32_t> il(cap);
      std::vector<uint32_t> ir(cap);
      size_t matches =
          simd::IntersectIndicesInt64(l.times.data(), nl, r.times.data(), nr,
                                      il.data(), ir.data(), msched.isa);
      for (size_t k = 0; k < matches; ++k) {
        int64_t a = l.values[il[k]];
        int64_t b = r.values[ir[k]];
        accum.sum_a += a;
        accum.sum_b += b;
        accum.sum_a2 += static_cast<__int128>(a) * a;
        accum.sum_b2 += static_cast<__int128>(b) * b;
        accum.sum_ab += static_cast<__int128>(a) * b;
        ++accum.n;
      }
    }
    if (t0 != 0) {
      NoteDecisionOutcome(*msched.decision, nl + nr,
                          metrics::NowNanos() - t0, &result.stats);
    }
  }
  accum.Finish(&result);
  result.stats.result_tuples = result.num_rows();
  return result;
}

}  // namespace etsqp::exec
