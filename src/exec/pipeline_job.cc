#include "exec/pipeline_job.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "exec/thread_pool.h"

namespace etsqp::exec {

Status RunPipelineJobs(const PipelineJobSet& set,
                       const PipelineOptions& options, ExecStats* stats) {
  Status first_error;
  if (set.num_jobs > 0 && set.job) {
    const size_t n = set.num_jobs;
    size_t runners =
        std::min<size_t>(static_cast<size_t>(std::max(options.threads, 1)), n);
    std::atomic<size_t> cursor{0};
    std::mutex err_mu;
    auto drain = [&] {
      for (;;) {
        size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        Status st = set.job(i);
        if (!st.ok()) {
          std::lock_guard<std::mutex> lk(err_mu);
          if (first_error.ok()) first_error = st;
          // Stop dispensing; runners mid-job finish their current job.
          cursor.store(n, std::memory_order_relaxed);
        }
      }
    };
    if (runners <= 1) {
      drain();
    } else {
      ThreadPool& pool = ThreadPool::Global();
      pool.Reserve(static_cast<int>(runners) - 1);
      const bool record = options.collect_stats && stats != nullptr;
      metrics::PoolStats before;
      if (record) before = pool.stats();
      TaskGroup group(&pool);
      for (size_t r = 1; r < runners; ++r) group.Submit(drain);
      drain();       // the caller is runner 0 (fork-join caller parity)
      group.Wait();  // barrier; rethrows worker exceptions here
      if (record) {
        stats->pool.Merge(metrics::PoolStatsDelta(before, pool.stats()));
        stats->pool_workers = pool.workers_running();
      }
    }
  }
  if (!first_error.ok()) return first_error;
  if (set.merge) return set.merge();
  return Status::Ok();
}

}  // namespace etsqp::exec
