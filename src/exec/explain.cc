#include "exec/explain.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <limits>

namespace etsqp::exec {

namespace {

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

/// Nanoseconds as a human-scaled fixed-width time.
void AppendTime(std::string* out, uint64_t nanos) {
  double ms = static_cast<double>(nanos) / 1e6;
  if (ms >= 1000.0) {
    Appendf(out, "%8.3f s ", ms / 1000.0);
  } else if (nanos >= 1000) {
    Appendf(out, "%8.3f ms", ms);
  } else {
    Appendf(out, "%5" PRIu64 "    ns", nanos);
  }
}

void AppendFilterLine(std::string* out, const char* indent,
                      const LogicalPlan& plan) {
  const bool have_time = !plan.time_filter.IsUniverse();
  const bool have_value = plan.value_filter.active;
  if (!have_time && !have_value) return;
  *out += indent;
  *out += "filter:";
  if (have_time) {
    Appendf(out, " time in [%" PRId64 ", %" PRId64 "]", plan.time_filter.lo,
            plan.time_filter.hi);
  }
  if (have_value) {
    Appendf(out, "%s value in [%" PRId64 ", %" PRId64 "]",
            have_time ? "," : "", plan.value_filter.lo, plan.value_filter.hi);
  }
  *out += '\n';
}

/// One scan leaf: the pages of one input series with the compile-time
/// pruning decision. Per-input page counts are recovered from the job list
/// (each surviving page contributes >= 1 job).
void AppendScan(std::string* out, const char* indent, const std::string& name,
                int input, const PipelineSpec& spec) {
  size_t jobs = 0;
  size_t pages = 0;
  size_t tail_tuples = 0;
  size_t last_page = std::numeric_limits<size_t>::max();
  for (const PipeJob& j : spec.jobs) {
    if (j.input != input) continue;
    if (j.tail) {
      tail_tuples = j.end - j.begin;
      continue;
    }
    ++jobs;
    if (j.page_index != last_page) {
      ++pages;
      last_page = j.page_index;
    }
  }
  Appendf(out, "%sScan %s  pages=%zu jobs=%zu", indent, name.c_str(), pages,
          jobs);
  if (tail_tuples > 0) Appendf(out, " tail=%zu", tail_tuples);
  *out += '\n';
}

}  // namespace

std::string RenderExplain(const LogicalPlan& plan,
                          const PipelineOptions& options,
                          const PipelineSpec& spec) {
  std::string out;

  // Root operator.
  switch (plan.kind) {
    case LogicalPlan::Kind::kAggregate:
      Appendf(&out, "Aggregate(%s)", AggFuncName(plan.func));
      if (plan.window.active) {
        Appendf(&out, " sliding_window(t_min=%" PRId64 ", dt=%" PRId64 ")",
                plan.window.t_min, plan.window.delta_t);
      }
      break;
    case LogicalPlan::Kind::kSelect:
      out += "Materialize";
      break;
    case LogicalPlan::Kind::kProjectBinary:
      Appendf(&out, "Project(left %c right)", plan.binary_op);
      break;
    case LogicalPlan::Kind::kUnion:
      out += "MergeUnion(time order)";
      break;
    case LogicalPlan::Kind::kJoin:
      out += "MergeJoin(on time)";
      break;
    case LogicalPlan::Kind::kCorrelate:
      out += "Correlate(corr, cov)";
      break;
  }
  out += '\n';
  if (plan.inter_column_op != 0) {
    Appendf(&out, "  inter-column filter: left %c right\n",
            plan.inter_column_op);
  }

  // Compiled Pipe configuration (Algorithm 2).
  Appendf(&out, "  Pipe[%s, fusion=%s, prune=%s, threads=%d, n_v=%s]",
          DecodeStrategyName(options.strategy), options.fusion ? "on" : "off",
          options.prune ? "on" : "off", options.threads,
          options.n_v > 0 ? std::to_string(options.n_v).c_str() : "auto");
  Appendf(&out, ": %zu jobs, %" PRIu64 "/%" PRIu64 " pages after pruning\n",
          spec.jobs.size(),
          spec.plan_stats.pages_total - spec.plan_stats.pages_pruned,
          spec.plan_stats.pages_total);
  // Registry decisions: one line per page class, the chosen SchedulerEntry
  // with its heuristic params and the cost estimate it won on.
  for (const ScheduleDecision& d : spec.decisions) {
    Appendf(&out, "    sched %s: entry=%s [%s] est=%.2fns/t (%s) pages=%" PRIu64
            " tuples=%" PRIu64 "\n",
            d.class_key.c_str(), d.entry->name(), d.params.ToString().c_str(),
            d.predicted_ns_per_tuple, d.calibrated ? "calibrated" : "model",
            d.pages, d.tuples);
  }
  AppendFilterLine(&out, "    ", plan);

  // Scan leaves (one per input series).
  AppendScan(&out, "    ", plan.series, 0, spec);
  if (!plan.series_right.empty()) {
    AppendScan(&out, "    ", plan.series_right, 1, spec);
  }
  return out;
}

std::string RenderStats(const ExecStats& stats) {
  std::string out;
  if (stats.wall_nanos > 0) {
    out += "wall: ";
    AppendTime(&out, stats.wall_nanos);
    Appendf(&out, "  threads: %d\n", stats.threads > 0 ? stats.threads : 1);
  }
  if (!stats.pool.empty() || stats.pool_workers > 0) {
    Appendf(&out,
            "pool: workers=%d tasks=%" PRIu64 " steals=%" PRIu64
            " parks=%" PRIu64 " parked=",
            stats.pool_workers, stats.pool.tasks, stats.pool.steals,
            stats.pool.parks);
    AppendTime(&out, stats.pool.park_nanos);
    out += '\n';
  }
  Appendf(&out,
          "pages: total=%" PRIu64 " pruned=%" PRIu64 " blocks_pruned=%" PRIu64
          "\n",
          stats.pages_total, stats.pages_pruned, stats.blocks_pruned);
  Appendf(&out,
          "tuples: in_pages=%" PRIu64 " scanned=%" PRIu64 " result=%" PRIu64
          "\n",
          stats.tuples_in_pages, stats.tuples_scanned, stats.result_tuples);
  if (stats.tail_tuples > 0) {
    Appendf(&out, "tail: tuples=%" PRIu64 " scanned=%" PRIu64 "\n",
            stats.tail_tuples, stats.tail_tuples_scanned);
  }
  if (stats.pages_pruned_deleted > 0 || stats.deleted_tuples_masked > 0) {
    Appendf(&out,
            "deletes: pages_pruned=%" PRIu64 " tuples_masked=%" PRIu64 "\n",
            stats.pages_pruned_deleted, stats.deleted_tuples_masked);
  }
  if (stats.index_probe_nanos > 0 || stats.series_pruned > 0 ||
      stats.pages_pruned_index > 0) {
    out += "index: probe ";
    AppendTime(&out, stats.index_probe_nanos);
    Appendf(&out, "  series_pruned=%" PRIu64 " pages_pruned=%" PRIu64 "\n",
            stats.series_pruned, stats.pages_pruned_index);
  }
  Appendf(&out, "bytes loaded: %" PRIu64 "\n", stats.bytes_loaded);
  if (stats.cache_hits + stats.cache_misses + stats.cache_evictions > 0) {
    Appendf(&out,
            "result cache: hits=%" PRIu64 " misses=%" PRIu64
            " evictions=%" PRIu64 "\n",
            stats.cache_hits, stats.cache_misses, stats.cache_evictions);
  }
  if (stats.admission_wait_nanos > 0 || stats.admission_queue_depth > 0) {
    out += "admission: waited ";
    AppendTime(&out, stats.admission_wait_nanos);
    Appendf(&out, "  queue_depth=%" PRIu64 "\n", stats.admission_queue_depth);
  }
  if (!stats.scheduler.empty()) {
    // Predicted-vs-measured per page class: how well the cost model (or the
    // calibration cache) anticipated the kernels it scheduled.
    Appendf(&out, "scheduler: mispredictions=%" PRIu64 "\n",
            stats.mispredictions);
    for (const auto& [key, s] : stats.scheduler) {
      double pred =
          s.tuples > 0 ? s.predicted_nanos / static_cast<double>(s.tuples) : 0;
      double meas =
          s.tuples > 0
              ? static_cast<double>(s.measured_nanos) / static_cast<double>(s.tuples)
              : 0;
      Appendf(&out, "  %s: entry=%s [%s]%s pred=%.2fns/t meas=%.2fns/t",
              key.c_str(), s.entry.c_str(), s.params.c_str(),
              s.calibrated ? " (calibrated)" : "", pred, meas);
      if (pred > 0) {
        Appendf(&out, " delta=%+.0f%%", (meas - pred) / pred * 100.0);
      }
      Appendf(&out, " jobs=%" PRIu64 " tuples=%" PRIu64 "\n", s.jobs,
              s.tuples);
    }
  }
  if (stats.stages.empty()) return out;

  Appendf(&out, "%-11s %-11s %10s %12s %14s\n", "stage", "time", "calls",
          "tuples", "bytes");
  for (int i = 0; i < metrics::kNumStages; ++i) {
    const metrics::StageStats& s =
        stats.stages.stages[i];
    if (s.empty()) continue;
    Appendf(&out, "%-11s ",
            metrics::StageName(static_cast<metrics::Stage>(i)));
    AppendTime(&out, s.nanos);
    Appendf(&out, " %10" PRIu64 " %12" PRIu64 " %14" PRIu64 "\n", s.calls,
            s.tuples, s.bytes);
  }
  return out;
}

std::string RenderExplainAnalyze(const LogicalPlan& plan,
                                 const PipelineOptions& options,
                                 const PipelineSpec& spec,
                                 const ExecStats& stats) {
  std::string out = RenderExplain(plan, options, spec);
  out += "---- execution profile ----\n";
  out += RenderStats(stats);
  return out;
}

}  // namespace etsqp::exec
