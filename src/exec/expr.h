#ifndef ETSQP_EXEC_EXPR_H_
#define ETSQP_EXEC_EXPR_H_

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace etsqp::exec {

/// Aggregation functions (Definition 2: valid value aggregation). SUM/COUNT
/// are associative; AVG/VARIANCE are algebraic over (sum, count, sum_sq);
/// MIN/MAX are associative but not Delta-fusable (they require decoding).
enum class AggFunc {
  kSum,
  kAvg,
  kCount,
  kMin,
  kMax,
  kVariance,
};

const char* AggFuncName(AggFunc f);

/// Inclusive time range predicate T >= lo AND T <= hi.
struct TimeRange {
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();

  bool IsUniverse() const {
    return lo == std::numeric_limits<int64_t>::min() &&
           hi == std::numeric_limits<int64_t>::max();
  }
  bool Contains(int64_t t) const { return t >= lo && t <= hi; }
  bool Overlaps(int64_t mn, int64_t mx) const { return mn <= hi && mx >= lo; }
};

/// Inclusive value range predicate A >= lo AND A <= hi. `active` false means
/// no value predicate.
struct ValueRange {
  bool active = false;
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();

  bool Contains(int64_t v) const { return !active || (v >= lo && v <= hi); }
};

/// Sliding window description sw(T_min, dT) (Definition 2): window k covers
/// [T_min + k*dT, T_min + (k+1)*dT). `active` false = single whole-range agg.
struct SlidingWindow {
  bool active = false;
  int64_t t_min = 0;
  int64_t delta_t = 1;

  int64_t WindowIndex(int64_t t) const { return (t - t_min) / delta_t; }
  int64_t WindowStart(int64_t k) const { return t_min + k * delta_t; }
};

/// Logical query plan covering the benchmark dialect (Table III) plus simple
/// extensions. One node description rather than a full tree: the Q1-Q6
/// shapes are fixed pipelines (Figure 2/9), which Pipe (Algorithm 2)
/// compiles into per-thread jobs.
struct LogicalPlan {
  enum class Kind {
    kAggregate,       // Q1-Q3: SELECT f(A) FROM ts [WHERE ...] [SW(...)]
    kSelect,          // SELECT * FROM ts [WHERE ...]
    kProjectBinary,   // Q4: SELECT ts1.A <op> ts2.A FROM ts1, ts2
    kUnion,           // Q5: SELECT * FROM ts1 UNION ts2 ORDER BY TIME
    kJoin,            // Q6: SELECT * FROM ts1, ts2 (natural join on time)
    kCorrelate,       // SELECT CORR(ts1.A, ts2.A) FROM ts1, ts2
  };

  /// EXPLAIN wrapper around the statement: kPlan compiles and renders the
  /// Pipe operator tree without executing; kAnalyze executes with stats
  /// collection forced on and annotates the tree with measured per-stage
  /// time/tuples/bytes.
  enum class ExplainMode { kNone, kPlan, kAnalyze };

  Kind kind = Kind::kAggregate;
  ExplainMode explain = ExplainMode::kNone;
  std::string series;        // left/primary input
  std::string series_right;  // right input for binary operators
  AggFunc func = AggFunc::kSum;
  TimeRange time_filter;
  ValueRange value_filter;
  SlidingWindow window;
  char binary_op = '+';  // + - * for kProjectBinary

  /// Inter-column predicate on joined tuples: left.value <op> right.value
  /// (Algorithm 2 Eq. 3: single-column filters push into the decoding
  /// pipelines; inter-column filters apply to the decoded vectors after the
  /// join mask). 0 = none; otherwise one of < > = (<= >= fold via swap).
  char inter_column_op = 0;

  static LogicalPlan Aggregate(std::string series, AggFunc func) {
    LogicalPlan p;
    p.kind = Kind::kAggregate;
    p.series = std::move(series);
    p.func = func;
    return p;
  }
};

/// Per-page-class scheduler outcome (populated only under collect_stats
/// when the registry planned the query): which SchedulerEntry ran the
/// class's jobs, the cost the registry predicted for them, the cost the
/// jobs actually measured, and how many jobs fell outside the prediction's
/// tolerance band (mispredictions).
struct SchedDecisionStats {
  std::string entry;   // SchedulerEntry::name() of the chosen entry
  std::string params;  // rendered HeuristicParams
  bool calibrated = false;  // cost came from the calibration cache
  uint64_t jobs = 0;
  uint64_t tuples = 0;
  double predicted_nanos = 0;
  uint64_t measured_nanos = 0;
  uint64_t mispredictions = 0;

  void Merge(const SchedDecisionStats& o) {
    if (entry.empty()) {
      entry = o.entry;
      params = o.params;
      calibrated = o.calibrated;
    }
    jobs += o.jobs;
    tuples += o.tuples;
    predicted_nanos += o.predicted_nanos;
    measured_nanos += o.measured_nanos;
    mispredictions += o.mispredictions;
  }
};

/// Execution statistics reported with every query result. The flat counters
/// are what the benches derive throughput (tuples of loaded pages per
/// second, counting pruned slices — Section VII-B) and I/O volume from; they
/// are deterministic (identical across thread counts). The per-stage
/// breakdown (timings, tuples, bytes per pipeline stage) is populated only
/// when PipelineOptions.collect_stats is on; jobs record it locally and the
/// engine merges at job completion, so collection is lock-free on the hot
/// path and free when off.
struct ExecStats {
  uint64_t pages_total = 0;
  uint64_t pages_pruned = 0;   // skipped whole (header-only)
  uint64_t blocks_pruned = 0;  // skipped by Propositions 4-5
  uint64_t tuples_in_pages = 0;
  uint64_t tuples_scanned = 0;  // actually decoded/inspected
  uint64_t bytes_loaded = 0;    // encoded payload bytes touched
  uint64_t result_tuples = 0;
  // Streaming-ingest tail (unsealed in-memory points served by the scalar
  // tail kernels). tail_tuples counts tail points visible to the scan;
  // tail_tuples_scanned the subset the tail kernels actually inspected
  // (also included in tuples_scanned, which stays the grand total).
  uint64_t tail_tuples = 0;
  uint64_t tail_tuples_scanned = 0;
  // Delete/TTL masking (storage tombstones): pages skipped at planning time
  // because a tombstone covers their whole time range, and tuples dropped by
  // the masked drain of partially covered pages. Tail points never appear
  // here — snapshots pre-filter the tail.
  uint64_t pages_pruned_deleted = 0;
  uint64_t deleted_tuples_masked = 0;
  // Pruning index (storage/pruning_index.h): nanoseconds spent in SIMD
  // index probes at planning time, inputs skipped entirely because their
  // series-level envelope misses the filters, and pages skipped by the
  // leaf-level scan (also counted in pages_pruned, which stays the total
  // across index and linear pruning).
  uint64_t index_probe_nanos = 0;
  uint64_t series_pruned = 0;
  uint64_t pages_pruned_index = 0;

  // Populated only under collect_stats.
  metrics::StageBreakdown stages;  // summed across jobs/threads
  uint64_t wall_nanos = 0;         // whole-query wall clock (engine level)
  int threads = 0;                 // worker threads configured for the run

  // Populated only under collect_stats for parallel runs on the shared
  // executor pool: the pool-wide counter delta (tasks, steals, parks,
  // parked time) observed during the run, and the pool's worker count.
  // Under concurrent queries the delta includes sibling queries' pool
  // activity — the pool is shared by design.
  metrics::PoolStats pool;
  int pool_workers = 0;

  // Populated only under collect_stats for registry-planned queries: the
  // per-page-class decision outcomes (keyed by PageClass::Key()) and the
  // query-total misprediction counter.
  std::map<std::string, SchedDecisionStats> scheduler;
  uint64_t mispredictions = 0;

  // Serving-layer counters (db/database.h): result-cache outcomes for this
  // query (a hit short-circuits execution entirely) and what admission
  // control did to it — nanoseconds spent queued behind the tenant's
  // concurrency limit, and the tenant queue depth observed at enqueue.
  // Always zero for bare-Engine runs; the Database front end fills them in.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;  // entries this query's insert evicted
  uint64_t admission_wait_nanos = 0;
  uint64_t admission_queue_depth = 0;

  void Merge(const ExecStats& o) {
    pages_total += o.pages_total;
    pages_pruned += o.pages_pruned;
    blocks_pruned += o.blocks_pruned;
    tuples_in_pages += o.tuples_in_pages;
    tuples_scanned += o.tuples_scanned;
    bytes_loaded += o.bytes_loaded;
    result_tuples += o.result_tuples;
    tail_tuples += o.tail_tuples;
    tail_tuples_scanned += o.tail_tuples_scanned;
    pages_pruned_deleted += o.pages_pruned_deleted;
    deleted_tuples_masked += o.deleted_tuples_masked;
    index_probe_nanos += o.index_probe_nanos;
    series_pruned += o.series_pruned;
    pages_pruned_index += o.pages_pruned_index;
    stages.Merge(o.stages);
    if (o.wall_nanos > wall_nanos) wall_nanos = o.wall_nanos;
    if (o.threads > threads) threads = o.threads;
    pool.Merge(o.pool);
    if (o.pool_workers > pool_workers) pool_workers = o.pool_workers;
    for (const auto& [key, s] : o.scheduler) scheduler[key].Merge(s);
    mispredictions += o.mispredictions;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    cache_evictions += o.cache_evictions;
    admission_wait_nanos += o.admission_wait_nanos;
    if (o.admission_queue_depth > admission_queue_depth) {
      admission_queue_depth = o.admission_queue_depth;
    }
  }

  /// One-line-per-field JSON object (counters, and — when collected — the
  /// per-stage breakdown and wall time). Reused by the bench JSON export.
  std::string ToJson() const;
};

/// Historical name: the flat counter block before the per-stage extension.
using QueryStats = ExecStats;

/// Tabular query output. Values are doubles (timestamps in the benchmark
/// datasets stay below 2^53, so the conversion is exact).
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<std::vector<double>> columns;
  ExecStats stats;

  /// Non-empty for EXPLAIN / EXPLAIN ANALYZE: the rendered operator tree.
  std::string explain_text;

  size_t num_rows() const {
    return columns.empty() ? 0 : columns[0].size();
  }
};

}  // namespace etsqp::exec

#endif  // ETSQP_EXEC_EXPR_H_
