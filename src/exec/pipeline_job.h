#ifndef ETSQP_EXEC_PIPELINE_JOB_H_
#define ETSQP_EXEC_PIPELINE_JOB_H_

#include <cstddef>
#include <functional>

#include "common/status.h"
#include "exec/expr.h"
#include "exec/pipeline.h"

namespace etsqp::exec {

/// The unified execution shape every engine path compiles into (paper
/// Algorithm 2 / Figure 9): Pipe turns a logical plan into a vector of
/// decoding-pipeline jobs (PipelineSpec::jobs) and one merge node.
/// `job(i)` runs the i-th job — decode/filter/aggregate one page slice into
/// job-local or mutex-merged state; `merge` is the Figure 9 merge node,
/// running exactly once on the caller after every job finished.
///
/// RunPipelineJobs() is the only way jobs reach threads: it submits the job
/// set to the process-wide work-stealing pool as one TaskGroup, so nested
/// parallelism composes and concurrent queries share workers instead of
/// spawning per-query threads.
struct PipelineJobSet {
  size_t num_jobs = 0;
  std::function<Status(size_t)> job;  // body of job i, i in [0, num_jobs)
  std::function<Status()> merge;      // optional caller-side merge node
};

/// Runs `set` with at most `options.threads` runners active for this query:
/// the caller acts as runner 0 and up to threads-1 runner tasks go to the
/// shared ThreadPool (grown on demand, reused across queries — no per-query
/// std::thread construction). Runners drain a shared cursor over the jobs,
/// so cores never idle while jobs remain (Section III-C). After the first
/// non-OK Status no new jobs are dispensed; in-flight jobs finish. A job
/// that throws has the exception rethrown here, on the caller.
///
/// `merge` runs on the caller iff every job returned OK; its Status is the
/// call's Status. With options.threads <= 1 (or a single job) everything
/// runs inline with zero pool traffic — the Serial baseline stays
/// scheduler-free.
///
/// Under options.collect_stats, the pool-wide counter delta of the run and
/// the pool worker count are recorded into stats->pool / pool_workers.
Status RunPipelineJobs(const PipelineJobSet& set,
                       const PipelineOptions& options, ExecStats* stats);

}  // namespace etsqp::exec

#endif  // ETSQP_EXEC_PIPELINE_JOB_H_
