#include "exec/column_decoder.h"

#include <immintrin.h>

#include <algorithm>

#include "common/bit_util.h"
#include "common/bitstream.h"
#include "common/cpu.h"
#include "encoding/bitpack.h"
#include "encoding/delta_rle.h"
#include "encoding/fastlanes.h"
#include "encoding/gorilla.h"
#include "encoding/rlbe.h"
#include "encoding/sprintz.h"
#include "encoding/streamvbyte.h"
#include "encoding/ts2diff.h"
#include "simd/delta_simd.h"
#include "simd/rle_flatten.h"
#include "simd/streamvbyte_simd.h"
#include "simd/transposed_unpack.h"
#include "simd/unpack.h"

namespace etsqp::exec {

const char* DecodeStrategyName(DecodeStrategy s) {
  switch (s) {
    case DecodeStrategy::kEtsqp:
      return "ETSQP";
    case DecodeStrategy::kSerial:
      return "Serial";
    case DecodeStrategy::kSboost:
      return "SBoost";
    case DecodeStrategy::kFastLanes:
      return "FastLanes";
  }
  return "?";
}

void DecodedColumn::Materialize(int64_t* out) const {
  if (narrow) {
    for (size_t i = 0; i < offsets.size(); ++i) out[i] = base + offsets[i];
  } else {
    std::copy(values64.begin(), values64.end(), out);
  }
}

namespace {

constexpr int64_t kNarrowSwingLimit = 1ll << 30;

/// Exact value bounds of a TS2DIFF column from its block statistics.
bool Ts2DiffBounds(const enc::Ts2DiffColumn& col, int64_t* lo, int64_t* hi) {
  if (col.blocks().empty()) {
    *lo = *hi = 0;
    return true;
  }
  int64_t mn = col.blocks()[0].min_value;
  int64_t mx = col.blocks()[0].max_value;
  for (const enc::Ts2DiffBlock& b : col.blocks()) {
    mn = std::min(mn, b.min_value);
    mx = std::max(mx, b.max_value);
  }
  *lo = mn;
  *hi = mx;
  return true;
}

Status DecodeTs2Diff(const uint8_t* data, size_t size, uint32_t count,
                     DecodeStrategy strategy, int n_v, size_t begin,
                     size_t end, bool ordered, DecodedColumn* out) {
  Result<enc::Ts2DiffColumn> parsed = enc::Ts2DiffColumn::Parse(data, size);
  if (!parsed.ok()) return parsed.status();
  const enc::Ts2DiffColumn& col = parsed.value();
  if (col.count() != count) return Status::Corruption("ts2diff count");
  end = std::min<size_t>(end, count);
  if (begin >= end) {
    out->narrow = true;
    out->base = 0;
    out->offsets.clear();
    out->values64.clear();
    return Status::Ok();
  }

  int64_t lo = 0, hi = 0;
  bool narrow = strategy != DecodeStrategy::kSerial &&
                Ts2DiffBounds(col, &lo, &hi) &&
                (hi - lo) < kNarrowSwingLimit;

  if (!narrow) {
    // Wide scalar path (value-at-a-time, also the Serial baseline).
    out->narrow = false;
    out->offsets.clear();
    out->values64.resize(end - begin);
    std::vector<int64_t> block_buf;
    for (const enc::Ts2DiffBlock& b : col.blocks()) {
      size_t bs = b.start_index;
      size_t be = bs + b.num_values();
      if (be <= begin || bs >= end) continue;
      block_buf.resize(b.num_values());
      enc::Ts2DiffColumn::DecodeBlock(b, block_buf.data());
      size_t from = std::max(bs, begin);
      size_t to = std::min(be, end);
      std::copy(block_buf.begin() + (from - bs), block_buf.begin() + (to - bs),
                out->values64.begin() + (from - begin));
    }
    return Status::Ok();
  }

  out->narrow = true;
  out->base = lo;
  out->values64.clear();
  out->offsets.resize(end - begin);
  std::vector<int32_t> block_buf;
  for (const enc::Ts2DiffBlock& b : col.blocks()) {
    size_t bs = b.start_index;
    size_t be = bs + b.num_values();
    if (be <= begin || bs >= end) continue;
    int32_t init = static_cast<int32_t>(b.first_value - lo);
    size_t from = std::max(bs, begin);
    size_t to = std::min(be, end);
    // Decode deltas 1..(to-bs-1); positions bs+1..to-1 plus first at bs.
    size_t deltas_needed = to - bs - 1;
    block_buf.resize(b.num_values());
    int32_t* buf = block_buf.data();
    buf[0] = init;
    if (deltas_needed > 0) {
      int32_t md = static_cast<int32_t>(b.min_delta);
      switch (strategy) {
        case DecodeStrategy::kEtsqp:
          // Full-block decode into an order-insensitive consumer keeps the
          // transposed layout (register sharing); partial blocks need
          // positions, so they stay ordered.
          if (!ordered && from == bs && to == be) {
            simd::DeltaDecodeOffsetsUnordered(b.packed, b.packed_bytes,
                                              deltas_needed, b.width, md, n_v,
                                              init, buf + 1);
          } else {
            simd::DeltaDecodeOffsets(b.packed, b.packed_bytes, deltas_needed,
                                     b.width, md, n_v, init, buf + 1);
          }
          break;
        case DecodeStrategy::kSboost:
          simd::SboostDeltaDecode(b.packed, b.packed_bytes, deltas_needed,
                                  b.width, md, init, buf + 1);
          break;
        default:
          simd::DeltaDecodeOffsetsScalar(b.packed, b.packed_bytes,
                                         deltas_needed, b.width, md, init,
                                         buf + 1);
          break;
      }
    }
    std::copy(buf + (from - bs), buf + (to - bs),
              out->offsets.begin() + (from - begin));
  }
  return Status::Ok();
}

Status DecodeDeltaRle(const uint8_t* data, size_t size, uint32_t count,
                      DecodeStrategy strategy, DecodedColumn* out,
                      metrics::StageBreakdown* stages) {
  Result<enc::DeltaRleColumn> parsed = enc::DeltaRleColumn::Parse(data, size);
  if (!parsed.ok()) return parsed.status();
  const enc::DeltaRleColumn& col = parsed.value();
  if (col.count() != count) return Status::Corruption("delta_rle count");
  if (count == 0) {
    out->narrow = true;
    out->base = 0;
    out->offsets.clear();
    return Status::Ok();
  }

  __int128 span = static_cast<__int128>(count) *
                  std::max<int64_t>(std::abs(col.delta_lower_bound()),
                                    std::abs(col.delta_upper_bound()));
  bool narrow = strategy != DecodeStrategy::kSerial &&
                col.delta_width() <= 31 && span < kNarrowSwingLimit;

  if (!narrow) {
    out->narrow = false;
    out->offsets.clear();
    out->values64.resize(count);
    metrics::ScopedStageTimer timer(stages, metrics::Stage::kDelta);
    timer.AddTuples(count);
    return col.DecodeAll(out->values64.data());
  }

  out->narrow = true;
  out->base = col.first_value();
  out->values64.clear();
  out->offsets.resize(count);
  out->offsets[0] = 0;

  uint32_t np = col.num_pairs();
  std::vector<int32_t> deltas(np);
  std::vector<uint32_t> runs(np);
  bool vectorized = strategy == DecodeStrategy::kEtsqp ||
                    strategy == DecodeStrategy::kSboost;
  metrics::ScopedStageTimer unpack_timer(stages, metrics::Stage::kUnpack);
  unpack_timer.AddTuples(np);
  if (vectorized) {
    simd::UnpackBE32(col.packed_deltas(), size, np, col.delta_width(),
                     reinterpret_cast<uint32_t*>(deltas.data()));
    simd::UnpackBE32(col.packed_runs(), size, np, col.run_width(),
                     runs.data());
  } else {
    enc::UnpackBE32(col.packed_deltas(), size, 0, np, col.delta_width(),
                    reinterpret_cast<uint32_t*>(deltas.data()));
    enc::UnpackBE32(col.packed_runs(), size, 0, np, col.run_width(),
                    runs.data());
  }
  unpack_timer.Stop();
  // The Delta/Repeat flatten is the separate pass fusion elides — its cost
  // reports under the delta stage.
  metrics::ScopedStageTimer delta_timer(stages, metrics::Stage::kDelta);
  delta_timer.AddTuples(count);
  int32_t md = static_cast<int32_t>(col.min_delta());
  uint64_t total_runs = 0;
  for (uint32_t i = 0; i < np; ++i) {
    deltas[i] += md;
    runs[i] += 1;
    total_runs += runs[i];
  }
  // Validate the expansion size BEFORE flattening: corrupted run fields
  // must not overflow the output buffer.
  if (total_runs != count - 1) {
    return Status::Corruption("delta_rle: run total mismatch");
  }
  if (strategy == DecodeStrategy::kEtsqp) {
    simd::FlattenDeltaRuns(deltas.data(), runs.data(), np, 0,
                           out->offsets.data() + 1);
  } else {
    simd::FlattenDeltaRunsScalar(deltas.data(), runs.data(), np, 0,
                                 out->offsets.data() + 1);
  }
  return Status::Ok();
}

Status DecodeFastLanesSimd(const enc::FastLanesColumn& col, size_t begin,
                           size_t end, DecodedColumn* out) {
  constexpr uint32_t kBlock = enc::FastLanesEncoder::kBlockValues;
  constexpr uint32_t kLanes = enc::FastLanesEncoder::kLanes;
  out->narrow = false;
  out->offsets.clear();
  out->values64.resize(end - begin);
  alignas(32) int64_t rows[kBlock];
  std::vector<uint32_t> residuals(kBlock - kLanes);
  for (const enc::FastLanesBlock& b : col.blocks()) {
    size_t bs = b.start_index;
    size_t be = bs + b.num_values;
    if (be <= begin || bs >= end) continue;
    for (uint32_t l = 0; l < kLanes; ++l) {
      rows[l] = static_cast<int64_t>(GetFixed64BE(b.base_row + l * 8));
    }
    simd::UnpackBE32(b.packed, b.packed_bytes, kBlock - kLanes, b.width,
                     residuals.data());
    // 31 lane-wise vector additions per block: row r = row r-1 + delta.
    if (UseAvx2()) {
      const __m256i vmd = _mm256_set1_epi64x(b.min_delta);
      for (uint32_t r = 1; r < kBlock / kLanes; ++r) {
        const uint32_t* res = residuals.data() + (r - 1) * kLanes;
        for (uint32_t l = 0; l < kLanes; l += 4) {
          __m128i r32 = _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(res + l));
          __m256i d = _mm256_cvtepu32_epi64(r32);
          __m256i prev = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
              rows + (r - 1) * kLanes + l));
          __m256i cur = _mm256_add_epi64(_mm256_add_epi64(prev, d), vmd);
          _mm256_storeu_si256(
              reinterpret_cast<__m256i*>(rows + r * kLanes + l), cur);
        }
      }
    } else {
      for (uint32_t i = kLanes; i < kBlock; ++i) {
        rows[i] = rows[i - kLanes] + b.min_delta +
                  static_cast<int64_t>(residuals[i - kLanes]);
      }
    }
    size_t from = std::max(bs, begin);
    size_t to = std::min(be, end);
    std::copy(rows + (from - bs), rows + (to - bs),
              out->values64.begin() + (from - begin));
  }
  return Status::Ok();
}

}  // namespace

Status DecodeColumnRange(const uint8_t* data, size_t size,
                         enc::ColumnEncoding encoding, uint32_t count,
                         DecodeStrategy strategy, int n_v, size_t begin,
                         size_t end, DecodedColumn* out, bool ordered,
                         metrics::StageBreakdown* stages) {
  end = std::min<size_t>(end, count);
  switch (encoding) {
    case enc::ColumnEncoding::kTs2Diff: {
      // TS2DIFF decodes with fused unpack+delta kernels (Algorithm 1): the
      // whole pass reports under kUnpack; a near-zero kDelta is exactly the
      // fusion effect EXPLAIN ANALYZE makes visible.
      metrics::ScopedStageTimer timer(stages, metrics::Stage::kUnpack);
      timer.AddTuples(end > begin ? end - begin : 0);
      timer.AddBytes(size);
      return DecodeTs2Diff(data, size, count, strategy, n_v, begin, end,
                           ordered, out);
    }
    case enc::ColumnEncoding::kFastLanes: {
      Result<enc::FastLanesColumn> parsed =
          enc::FastLanesColumn::Parse(data, size);
      if (!parsed.ok()) return parsed.status();
      if (parsed.value().count() != count) {
        return Status::Corruption("fastlanes count");
      }
      metrics::ScopedStageTimer timer(stages, metrics::Stage::kUnpack);
      timer.AddTuples(end > begin ? end - begin : 0);
      timer.AddBytes(size);
      if (strategy == DecodeStrategy::kSerial) {
        out->narrow = false;
        out->offsets.clear();
        out->values64.resize(count);
        ETSQP_RETURN_IF_ERROR(parsed.value().DecodeAll(out->values64.data()));
        if (begin != 0 || end != count) {
          out->values64.erase(out->values64.begin() + end,
                              out->values64.end());
          out->values64.erase(out->values64.begin(),
                              out->values64.begin() + begin);
        }
        return Status::Ok();
      }
      return DecodeFastLanesSimd(parsed.value(), begin, end, out);
    }
    default:
      break;
  }
  // Non-block-sliceable encodings: decode fully, then cut the range.
  // Delta-RLE records its own unpack/flatten split; the rest count whole
  // under the unpack stage.
  DecodedColumn full;
  {
    metrics::ScopedStageTimer timer(
        encoding == enc::ColumnEncoding::kDeltaRle ? nullptr : stages,
        metrics::Stage::kUnpack);
    timer.AddTuples(count);
    timer.AddBytes(size);
    switch (encoding) {
      case enc::ColumnEncoding::kDeltaRle:
        ETSQP_RETURN_IF_ERROR(
            DecodeDeltaRle(data, size, count, strategy, &full, stages));
        break;
    case enc::ColumnEncoding::kRlbe: {
      Result<enc::RlbeColumn> parsed = enc::RlbeColumn::Parse(data, size);
      if (!parsed.ok()) return parsed.status();
      const enc::RlbeColumn& col = parsed.value();
      if (col.count() != count) return Status::Corruption("rlbe count");
      if (begin > 0 || end < count) {
        // Variable-width slice (Section III-C): resynchronize at the
        // nearest anchor and decode only the requested range — scanning
        // skips codewords without reconstructing values.
        uint32_t stride = std::max<uint32_t>(1024, count / 16);
        Result<std::vector<enc::RlbeColumn::Anchor>> anchors =
            col.ScanAnchors(stride);
        if (!anchors.ok()) return anchors.status();
        const enc::RlbeColumn::Anchor* best = &anchors.value()[0];
        for (const auto& a : anchors.value()) {
          if (a.value_index <= std::max<size_t>(begin, 1)) best = &a;
        }
        out->narrow = false;
        out->offsets.clear();
        out->values64.resize(end - begin);
        std::vector<int64_t> tail(end - best->value_index);
        ETSQP_RETURN_IF_ERROR(col.DecodeFrom(
            *best, static_cast<uint32_t>(end), tail.data()));
        if (begin == 0) {
          out->values64[0] = col.first_value();
          std::copy(tail.begin(), tail.begin() + (end - 1), 
                    out->values64.begin() + 1);
        } else {
          std::copy(tail.begin() + (begin - best->value_index), tail.end(),
                    out->values64.begin());
        }
        return Status::Ok();
      }
      full.narrow = false;
      full.values64.resize(count);
      ETSQP_RETURN_IF_ERROR(col.DecodeAll(full.values64.data()));
      break;
    }
    case enc::ColumnEncoding::kSprintz: {
      Result<enc::SprintzColumn> parsed =
          enc::SprintzColumn::Parse(data, size);
      if (!parsed.ok()) return parsed.status();
      if (parsed.value().count() != count) {
        return Status::Corruption("sprintz count");
      }
      full.narrow = false;
      full.values64.resize(count);
      ETSQP_RETURN_IF_ERROR(parsed.value().DecodeAll(full.values64.data()));
      break;
    }
    case enc::ColumnEncoding::kGorilla: {
      enc::EncodedColumn col;
      col.encoding = enc::ColumnEncoding::kGorilla;
      col.count = count;
      col.bytes.assign(data, data + size);
      full.narrow = false;
      full.values64.resize(count);
      ETSQP_RETURN_IF_ERROR(
          enc::GorillaTimestampDecode(col, full.values64.data()));
      break;
    }
    case enc::ColumnEncoding::kStreamVByte: {
      Result<enc::StreamVByteColumn> parsed =
          enc::StreamVByteColumn::Parse(data, size);
      if (!parsed.ok()) return parsed.status();
      const enc::StreamVByteColumn& col = parsed.value();
      if (col.count() != count) {
        return Status::Corruption("streamvbyte count");
      }
      full.narrow = false;
      full.values64.resize(count);
      if (count == 0) break;
      if (strategy != DecodeStrategy::kSerial && UseAvx2()) {
        // Shuffle-LUT decode (two PSHUFB per 4-delta group) + prefix sum.
        if (!simd::StreamVByteDecodeSse(col.control(), col.control_bytes(),
                                        col.data(), col.data_bytes(),
                                        count - 1, col.first_value(),
                                        full.values64.data())) {
          return Status::Corruption("streamvbyte: data truncated");
        }
      } else {
        ETSQP_RETURN_IF_ERROR(col.DecodeAll(full.values64.data()));
      }
      break;
    }
    case enc::ColumnEncoding::kPlain: {
      if (size < static_cast<size_t>(count) * 8) {
        return Status::Corruption("plain: truncated");
      }
      full.narrow = false;
      full.values64.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        full.values64[i] = static_cast<int64_t>(GetFixed64BE(data + i * 8));
      }
      break;
    }
    default:
      return Status::NotSupported("decode for this encoding");
    }
  }
  if (begin == 0 && end == full.size()) {
    *out = std::move(full);
    return Status::Ok();
  }
  out->narrow = full.narrow;
  out->base = full.base;
  if (full.narrow) {
    out->offsets.assign(full.offsets.begin() + begin,
                        full.offsets.begin() + end);
    out->values64.clear();
  } else {
    out->values64.assign(full.values64.begin() + begin,
                         full.values64.begin() + end);
    out->offsets.clear();
  }
  return Status::Ok();
}

Status DecodeColumn(const uint8_t* data, size_t size,
                    enc::ColumnEncoding encoding, uint32_t count,
                    DecodeStrategy strategy, int n_v, DecodedColumn* out,
                    metrics::StageBreakdown* stages) {
  return DecodeColumnRange(data, size, encoding, count, strategy, n_v, 0,
                           count, out, /*ordered=*/true, stages);
}

}  // namespace etsqp::exec
