#ifndef ETSQP_EXEC_SCHEDULER_H_
#define ETSQP_EXEC_SCHEDULER_H_

#include <cstddef>
#include <vector>

namespace etsqp::exec {

/// Core-level parallelism (paper Section III-C): pipeline jobs run on up to
/// `threads` runners; each runner pulls the next job from a shared atomic
/// cursor, so cores never idle while jobs remain (the scheduling policy the
/// Figure 11 micro-benchmark credits for ETSQP's thread scaling). Work
/// reaches threads through PipelineJobSet / RunPipelineJobs
/// (exec/pipeline_job.h); this header holds the slice planner that decides
/// what the jobs are.

/// A unit of decoding work: a page, or a slice of one. `begin/end` are value
/// positions within the page (block-aligned slices: TS2DIFF blocks decode
/// independently, so slices carry no prefix-sum dependency).
struct PageSlice {
  size_t page_index = 0;
  size_t begin = 0;
  size_t end = 0;  // exclusive
};

/// Slice planner (Algorithm 2 Lines 5-6): when there are at least as many
/// pages as cores, each job is a whole page; otherwise pages split into at
/// most ceil(threads / #pages) block-aligned slices each, so every core gets
/// work. `page_counts[i]` is the tuple count of page i; `block_size` aligns
/// slice boundaries to encoder blocks.
std::vector<PageSlice> PlanSlices(const std::vector<size_t>& page_counts,
                                  int threads, size_t block_size);

}  // namespace etsqp::exec

#endif  // ETSQP_EXEC_SCHEDULER_H_
