#ifndef ETSQP_EXEC_SCHEDULER_H_
#define ETSQP_EXEC_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace etsqp::exec {

/// Core-level parallelism (paper Section III-C): pipeline jobs run on up to
/// `threads` runners; each runner pulls the next job from a shared atomic
/// cursor, so cores never idle while jobs remain (the scheduling policy the
/// Figure 11 micro-benchmark credits for ETSQP's thread scaling).
///
/// Legacy fork-join shim. Runners are tasks on the shared persistent
/// ThreadPool (exec/thread_pool.h) — no per-call std::thread construction —
/// and a job that throws has the first exception rethrown here instead of
/// the old std::terminate. New code should compile work into a
/// PipelineJobSet and call RunPipelineJobs (exec/pipeline_job.h), which
/// adds Status propagation, the merge step, and pool stats capture; this
/// entry point remains for callers that predate the job framework.
///
/// Runs fn(job_index) for every index in [0, num_jobs) using up to `threads`
/// runners (1 = inline on the caller). Blocks until all jobs finish.
void RunJobs(size_t num_jobs, int threads,
             const std::function<void(size_t)>& fn);

/// A unit of decoding work: a page, or a slice of one. `begin/end` are value
/// positions within the page (block-aligned slices: TS2DIFF blocks decode
/// independently, so slices carry no prefix-sum dependency).
struct PageSlice {
  size_t page_index = 0;
  size_t begin = 0;
  size_t end = 0;  // exclusive
};

/// Slice planner (Algorithm 2 Lines 5-6): when there are at least as many
/// pages as cores, each job is a whole page; otherwise pages split into at
/// most ceil(threads / #pages) block-aligned slices each, so every core gets
/// work. `page_counts[i]` is the tuple count of page i; `block_size` aligns
/// slice boundaries to encoder blocks.
std::vector<PageSlice> PlanSlices(const std::vector<size_t>& page_counts,
                                  int threads, size_t block_size);

}  // namespace etsqp::exec

#endif  // ETSQP_EXEC_SCHEDULER_H_
