#include "exec/scheduler_registry.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>

#include "common/cpu.h"
#include "common/crc32.h"
#include "common/metrics.h"
#include "simd/transposed_unpack_avx512.h"
#include "storage/page_builder.h"

namespace etsqp::exec {

namespace {

/// Width grid the classifier rounds up to. Coarse on purpose: calibration
/// and planning must land real pages and synthetic probe pages in the same
/// bucket, and decode cost moves slowly with width.
constexpr int kWidthBuckets[] = {1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 25, 32, 64};

int WidthBucket(double bits_per_value) {
  for (int b : kWidthBuckets) {
    if (bits_per_value <= b) return b;
  }
  return 64;
}

/// The transposed kernels take 4-byte windows: packing widths above 25 fall
/// back to the wide/scalar path (see simd/transposed_unpack.h).
constexpr int kTransposedMaxWidth = 25;

/// Serial per-tuple cost (the T_serial numerator of Theorem 2).
double SerialTupleCost(const CostConstants& c) {
  return 2.0 * c.t_vis_mem + c.t_shift + c.t_and + c.t_op + c.t_reg_save;
}

/// Transposed-decode cost for one tuple at this width bucket, clamped to
/// the model's SIMD domain; above it the kernels run the widened path,
/// modeled as serial minus the vectorized delta recovery.
double TransposedCost(int width, int n_v, const CostConstants& c) {
  if (width > kTransposedMaxWidth) return 0.8 * SerialTupleCost(c);
  return AverageDecodeTime(width, 32, n_v, c) + c.t_add / 8.0;
}

bool FusableFunc(AggFunc func, enc::ColumnEncoding venc) {
  return func == AggFunc::kSum || func == AggFunc::kAvg ||
         func == AggFunc::kCount ||
         (func == AggFunc::kVariance && venc == enc::ColumnEncoding::kDeltaRle);
}

bool IntSealed(const PageClass& cls) {
  return cls.sealed && !cls.is_float && !cls.merge && !cls.prune;
}

/// --- Concrete entries ----------------------------------------------------

/// Section IV operator fusion: block-closed-form aggregation straight over
/// the encoded form (Ts2DiffFusedReader::SumRange / FusedAggDeltaRle). No
/// unpack, no delta recovery — the cheapest plan whenever it applies.
class FusedAggEntry : public SchedulerEntry {
 public:
  const char* name() const override { return "etsqp.fused"; }
  int priority() const override { return 100; }
  bool CanSchedule(const PageClass& cls, const PlanContext& ctx) const override {
    if (!IntSealed(cls) || !ctx.aggregate || !ctx.fusion || ctx.value_filter) {
      return false;
    }
    if (!FusableFunc(ctx.func, cls.value_encoding)) return false;
    if (cls.value_encoding == enc::ColumnEncoding::kTs2Diff) {
      return cls.width_bucket <= kTransposedMaxWidth;
    }
    return cls.value_encoding == enc::ColumnEncoding::kDeltaRle;
  }
  HeuristicParams Params(const PageClass& cls,
                         const PlanContext&) const override {
    return {DecodeStrategy::kEtsqp, OptimalNv(std::min(
                cls.width_bucket, kTransposedMaxWidth)),
            /*fusion=*/true, /*transposed=*/true};
  }
  double PredictCost(const PageClass& cls, const PlanContext&,
                     const CostConstants& c) const override {
    // Fused readers skip recovery and scatter: model as half the decode.
    int w = std::min(std::max(cls.width_bucket, 1), kTransposedMaxWidth);
    return 0.5 * AverageDecodeTime(w, 32, OptimalNv(w), c);
  }
};

/// Algorithm 1 on 512-bit vectors (simd/transposed_unpack_avx512). Same
/// kernels as the AVX2 entry underneath — this entry exists so the wider
/// datapath gets its own cost row and calibration bucket.
class EtsqpAvx512Entry : public SchedulerEntry {
 public:
  const char* name() const override { return "etsqp.avx512"; }
  int priority() const override { return 90; }
  bool CanSchedule(const PageClass& cls, const PlanContext&) const override {
    return IntSealed(cls) && UseAvx2() && simd::Avx512Available() &&
           cls.width_bucket <= kTransposedMaxWidth;
  }
  HeuristicParams Params(const PageClass&, const PlanContext& ctx)
      const override {
    // The 512-bit kernels default to n_v = 2 (two ZMM vectors per chunk).
    return {DecodeStrategy::kEtsqp, 2, ctx.fusion, /*transposed=*/true};
  }
  double PredictCost(const PageClass& cls, const PlanContext&,
                     const CostConstants& c) const override {
    CostConstants wide = c;
    wide.simd_bits = 512;
    return AverageDecodeTime(std::max(cls.width_bucket, 1), 32, 2, wide) +
           c.t_add / 16.0;
  }
};

/// Algorithm 1 on AVX2: transposed unpack + Delta recovery, n_v from
/// Proposition 1. Also covers widths past the transposed domain via the
/// widened path, so ETSQP keeps its strategy on mixed-width series.
class EtsqpAvx2Entry : public SchedulerEntry {
 public:
  const char* name() const override { return "etsqp.avx2"; }
  int priority() const override { return 80; }
  bool CanSchedule(const PageClass& cls, const PlanContext&) const override {
    return IntSealed(cls) && UseAvx2();
  }
  HeuristicParams Params(const PageClass& cls,
                         const PlanContext& ctx) const override {
    int w = std::min(std::max(cls.width_bucket, 1), kTransposedMaxWidth);
    return {DecodeStrategy::kEtsqp, OptimalNv(w), ctx.fusion,
            cls.width_bucket <= kTransposedMaxWidth};
  }
  double PredictCost(const PageClass& cls, const PlanContext&,
                     const CostConstants& c) const override {
    int w = std::max(cls.width_bucket, 1);
    return TransposedCost(w, OptimalNv(std::min(w, kTransposedMaxWidth)), c);
  }
};

/// FastLanes FLMM1024 tile decode — only meaningful for pages encoded in
/// the FastLanes layout.
class FastLanesEntry : public SchedulerEntry {
 public:
  const char* name() const override { return "fastlanes.flmm"; }
  int priority() const override { return 70; }
  bool CanSchedule(const PageClass& cls, const PlanContext&) const override {
    return IntSealed(cls) && UseAvx2() &&
           cls.value_encoding == enc::ColumnEncoding::kFastLanes;
  }
  HeuristicParams Params(const PageClass& cls,
                         const PlanContext&) const override {
    int w = std::min(std::max(cls.width_bucket, 1), kTransposedMaxWidth);
    return {DecodeStrategy::kFastLanes, OptimalNv(w), false,
            /*transposed=*/true};
  }
  double PredictCost(const PageClass& cls, const PlanContext&,
                     const CostConstants& c) const override {
    int w = std::max(cls.width_bucket, 1);
    // 1024-value tiles add transpose bookkeeping over the dynamic layout.
    return 1.05 * TransposedCost(w, OptimalNv(std::min(w, 25)), c);
  }
};

/// SBoost baseline: natural-order SIMD unpack + log-step prefix sum. The
/// linear layout pays the full prefix network per vector — n_v = 1 in the
/// Proposition 1 formula.
class SboostEntry : public SchedulerEntry {
 public:
  const char* name() const override { return "sboost.linear"; }
  int priority() const override { return 60; }
  bool CanSchedule(const PageClass& cls, const PlanContext&) const override {
    return IntSealed(cls) && UseAvx2() &&
           cls.value_encoding != enc::ColumnEncoding::kFastLanes;
  }
  HeuristicParams Params(const PageClass&, const PlanContext&) const override {
    return {DecodeStrategy::kSboost, 1, false, /*transposed=*/false};
  }
  double PredictCost(const PageClass& cls, const PlanContext&,
                     const CostConstants& c) const override {
    int w = std::max(cls.width_bucket, 1);
    if (w > 32) return SerialTupleCost(c);
    return AverageDecodeTime(std::min(w, 32), 32, 1, c) + c.t_add / 8.0;
  }
};

/// XOR-pattern float columns (Gorilla/Chimp/Elf): inherently serial bit
/// streams; one entry covers them so float classes still get a cost row.
class XorFloatEntry : public SchedulerEntry {
 public:
  const char* name() const override { return "xor.float"; }
  int priority() const override { return 50; }
  bool CanSchedule(const PageClass& cls, const PlanContext&) const override {
    return cls.sealed && cls.is_float && !cls.merge;
  }
  HeuristicParams Params(const PageClass&, const PlanContext&) const override {
    return {DecodeStrategy::kEtsqp, 0, false, false};
  }
  double PredictCost(const PageClass&, const PlanContext&,
                     const CostConstants& c) const override {
    return 2.0 * c.t_vis_mem + 2.0 * c.t_op;
  }
};

/// The unsealed in-memory tail: raw arrays drained by the scalar tail
/// kernels (exec/tail_kernel.h). Only entry for unsealed classes.
class TailScalarEntry : public SchedulerEntry {
 public:
  const char* name() const override { return "tail.scalar"; }
  int priority() const override { return 40; }
  bool CanSchedule(const PageClass& cls, const PlanContext&) const override {
    return !cls.sealed;
  }
  HeuristicParams Params(const PageClass&, const PlanContext&) const override {
    return {DecodeStrategy::kEtsqp, 0, false, false};
  }
  double PredictCost(const PageClass&, const PlanContext&,
                     const CostConstants& c) const override {
    return c.t_vis_mem + c.t_op + c.t_add;
  }
};

/// Value-at-a-time scalar pipeline: always feasible on sealed integer pages
/// — the guaranteed fallback when SIMD is unavailable, and the baseline
/// every calibration sweep measures against. Floats go through xor.float.
class SerialEntry : public SchedulerEntry {
 public:
  const char* name() const override { return "serial.scalar"; }
  int priority() const override { return 10; }
  bool CanSchedule(const PageClass& cls, const PlanContext&) const override {
    return IntSealed(cls);
  }
  HeuristicParams Params(const PageClass&, const PlanContext&) const override {
    return {DecodeStrategy::kSerial, 0, false, false};
  }
  double PredictCost(const PageClass&, const PlanContext&,
                     const CostConstants& c) const override {
    return SerialTupleCost(c);
  }
};

/// --- Merge-stage entries (simd/merge_simd.h kernel family) ----------------
/// These schedule the N-way timestamp merge/intersection stage of binary,
/// correlate, and concatenation plans — a per-tuple stream operation, not a
/// page decode, so they get their own class ("merge/2way", "merge/nway")
/// and their own calibration rows.

class MergeAvx512Entry : public SchedulerEntry {
 public:
  const char* name() const override { return "etsqp.merge.avx512"; }
  int priority() const override { return 88; }
  bool CanSchedule(const PageClass& cls, const PlanContext&) const override {
    return cls.merge && UseAvx2() && simd::Avx512Available();
  }
  HeuristicParams Params(const PageClass&, const PlanContext&) const override {
    return {DecodeStrategy::kEtsqp, 0, false, false};
  }
  double PredictCost(const PageClass&, const PlanContext&,
                     const CostConstants& c) const override {
    // Block-skip compares amortize over 8 lanes.
    return (c.t_vis_mem + c.t_op) / 8.0 + c.t_add / 8.0;
  }
};

class MergeAvx2Entry : public SchedulerEntry {
 public:
  const char* name() const override { return "etsqp.merge.avx2"; }
  int priority() const override { return 86; }
  bool CanSchedule(const PageClass& cls, const PlanContext&) const override {
    return cls.merge && UseAvx2();
  }
  HeuristicParams Params(const PageClass&, const PlanContext&) const override {
    return {DecodeStrategy::kEtsqp, 0, false, false};
  }
  double PredictCost(const PageClass&, const PlanContext&,
                     const CostConstants& c) const override {
    return (c.t_vis_mem + c.t_op) / 4.0 + c.t_add / 4.0;
  }
};

class MergeScalarEntry : public SchedulerEntry {
 public:
  const char* name() const override { return "etsqp.merge.scalar"; }
  int priority() const override { return 12; }
  bool CanSchedule(const PageClass& cls, const PlanContext&) const override {
    return cls.merge;
  }
  HeuristicParams Params(const PageClass&, const PlanContext&) const override {
    return {DecodeStrategy::kSerial, 0, false, false};
  }
  double PredictCost(const PageClass&, const PlanContext&,
                     const CostConstants& c) const override {
    return c.t_vis_mem + c.t_op + c.t_add;
  }
};

/// --- Prune-stage entries (simd/prune_simd.h kernel family) -----------------
/// These schedule the planning-time interval scan over the pruning index
/// (storage/pruning_index.h): 4 SoA bound columns, a compare+movemask per
/// 64-wide node, cost in ns per index entry rather than per tuple.

class PruneAvx512Entry : public SchedulerEntry {
 public:
  const char* name() const override { return "etsqp.prune.avx512"; }
  int priority() const override { return 87; }
  bool CanSchedule(const PageClass& cls, const PlanContext&) const override {
    return cls.prune && UseAvx2() && simd::Avx512Available();
  }
  HeuristicParams Params(const PageClass&, const PlanContext&) const override {
    return {DecodeStrategy::kEtsqp, 0, false, false};
  }
  double PredictCost(const PageClass&, const PlanContext&,
                     const CostConstants& c) const override {
    // Four 512-bit bound loads + compares amortize over 8 entries.
    return (4.0 * c.t_vis_mem + 4.0 * c.t_op) / 8.0;
  }
};

class PruneAvx2Entry : public SchedulerEntry {
 public:
  const char* name() const override { return "etsqp.prune.avx2"; }
  int priority() const override { return 85; }
  bool CanSchedule(const PageClass& cls, const PlanContext&) const override {
    return cls.prune && UseAvx2();
  }
  HeuristicParams Params(const PageClass&, const PlanContext&) const override {
    return {DecodeStrategy::kEtsqp, 0, false, false};
  }
  double PredictCost(const PageClass&, const PlanContext&,
                     const CostConstants& c) const override {
    return (4.0 * c.t_vis_mem + 4.0 * c.t_op) / 4.0;
  }
};

class PruneScalarEntry : public SchedulerEntry {
 public:
  const char* name() const override { return "etsqp.prune.scalar"; }
  int priority() const override { return 11; }
  bool CanSchedule(const PageClass& cls, const PlanContext&) const override {
    return cls.prune;
  }
  HeuristicParams Params(const PageClass&, const PlanContext&) const override {
    return {DecodeStrategy::kSerial, 0, false, false};
  }
  double PredictCost(const PageClass&, const PlanContext&,
                     const CostConstants& c) const override {
    return 4.0 * c.t_vis_mem + 4.0 * c.t_op;
  }
};

}  // namespace

std::string PageClass::Key() const {
  if (prune) return "prune";
  if (merge) return merge_ways <= 2 ? "merge/2way" : "merge/nway";
  if (!sealed) return is_float ? "tail/f64" : "tail";
  std::string key = enc::ColumnEncodingName(value_encoding);
  if (is_float) {
    key += "/f64";
  } else {
    key += "/w" + std::to_string(width_bucket);
  }
  return key;
}

PageClass ClassifyPage(const storage::PageHeader& header) {
  PageClass cls;
  cls.value_encoding = header.value_encoding;
  cls.time_encoding = header.time_encoding;
  cls.sealed = true;
  cls.is_float = enc::IsFloatEncoding(header.value_encoding);
  if (!cls.is_float && header.count > 0) {
    // Average encoded bits per value (block framing included): the header
    // does not carry the packing width, but encoded density tracks it.
    cls.width_bucket = WidthBucket(8.0 * header.value_bytes / header.count);
  }
  return cls;
}

PageClass ClassifyTail(const storage::SeriesSnapshot& snap) {
  PageClass cls;
  cls.sealed = false;
  cls.is_float = snap.is_float;
  cls.width_bucket = 64;  // raw int64/double arrays
  cls.value_encoding = enc::ColumnEncoding::kPlain;
  cls.time_encoding = enc::ColumnEncoding::kPlain;
  return cls;
}

PageClass ClassifyMerge(int ways) {
  PageClass cls;
  cls.merge = true;
  cls.merge_ways = ways;
  cls.sealed = true;
  cls.width_bucket = 64;  // materialized int64 streams
  cls.value_encoding = enc::ColumnEncoding::kPlain;
  cls.time_encoding = enc::ColumnEncoding::kPlain;
  return cls;
}

simd::MergeIsa MergeEntryIsa(const std::string& entry_name) {
  if (entry_name == "etsqp.merge.avx512") return simd::MergeIsa::kAvx512;
  if (entry_name == "etsqp.merge.avx2") return simd::MergeIsa::kAvx2;
  if (entry_name == "etsqp.merge.scalar") return simd::MergeIsa::kScalar;
  return simd::BestMergeIsa();
}

PageClass ClassifyPrune() {
  PageClass cls;
  cls.prune = true;
  cls.sealed = true;
  cls.width_bucket = 64;  // raw int64 SoA bound columns
  cls.value_encoding = enc::ColumnEncoding::kPlain;
  cls.time_encoding = enc::ColumnEncoding::kPlain;
  return cls;
}

simd::PruneIsa PruneEntryIsa(const std::string& entry_name) {
  if (entry_name == "etsqp.prune.avx512") return simd::PruneIsa::kAvx512;
  if (entry_name == "etsqp.prune.avx2") return simd::PruneIsa::kAvx2;
  if (entry_name == "etsqp.prune.scalar") return simd::PruneIsa::kScalar;
  return simd::BestPruneIsa();
}

PlanContext MakePlanContext(const LogicalPlan& plan,
                            const PipelineOptions& options) {
  PlanContext ctx;
  ctx.aggregate = plan.kind == LogicalPlan::Kind::kAggregate;
  ctx.func = plan.func;
  ctx.value_filter = plan.value_filter.active;
  ctx.windowed = plan.window.active;
  ctx.fusion = options.fusion;
  ctx.prune = options.prune;
  ctx.threads = options.threads;
  return ctx;
}

std::string HeuristicParams::ToString() const {
  std::string out = "n_v=" + std::to_string(n_v);
  out += transposed ? " transposed" : " linear";
  if (fusion) out += " fused";
  return out;
}

SchedulerRegistry::SchedulerRegistry() {
  entries_.push_back(std::make_unique<FusedAggEntry>());
  entries_.push_back(std::make_unique<EtsqpAvx512Entry>());
  entries_.push_back(std::make_unique<EtsqpAvx2Entry>());
  entries_.push_back(std::make_unique<FastLanesEntry>());
  entries_.push_back(std::make_unique<SboostEntry>());
  entries_.push_back(std::make_unique<XorFloatEntry>());
  entries_.push_back(std::make_unique<TailScalarEntry>());
  entries_.push_back(std::make_unique<SerialEntry>());
  entries_.push_back(std::make_unique<MergeAvx512Entry>());
  entries_.push_back(std::make_unique<MergeAvx2Entry>());
  entries_.push_back(std::make_unique<MergeScalarEntry>());
  entries_.push_back(std::make_unique<PruneAvx512Entry>());
  entries_.push_back(std::make_unique<PruneAvx2Entry>());
  entries_.push_back(std::make_unique<PruneScalarEntry>());
}

const SchedulerRegistry& SchedulerRegistry::Global() {
  static const SchedulerRegistry* registry = new SchedulerRegistry();
  return *registry;
}

const SchedulerEntry* SchedulerRegistry::Find(const std::string& name) const {
  for (const auto& e : entries_) {
    if (name == e->name()) return e.get();
  }
  return nullptr;
}

ScheduleDecision SchedulerRegistry::Propose(
    const PageClass& cls, const PlanContext& ctx,
    const CostCalibration* calibration, const CostConstants& constants) const {
  ScheduleDecision best;
  best.class_key = cls.Key();
  for (const auto& e : entries_) {
    if (!e->CanSchedule(cls, ctx)) continue;
    double cost = 0;
    bool calibrated =
        calibration != nullptr &&
        calibration->Lookup(e->name(), best.class_key, &cost);
    if (!calibrated) cost = e->PredictCost(cls, ctx, constants);
    bool better =
        best.entry == nullptr || cost < best.predicted_ns_per_tuple ||
        (cost == best.predicted_ns_per_tuple &&
         e->priority() > best.entry->priority());
    if (better) {
      best.entry = e.get();
      best.params = e->Params(cls, ctx);
      best.predicted_ns_per_tuple = cost;
      best.calibrated = calibrated;
    }
  }
  return best;
}

PipelineOptions ApplyDecision(const PipelineOptions& base,
                              const ScheduleDecision& d) {
  PipelineOptions o = base;
  if (d.entry == nullptr) return o;
  o.strategy = d.params.strategy;
  o.fusion = d.params.fusion;
  // base.n_v > 0 is a user pin and stays; 0 keeps the kernels' per-block
  // Proposition 1 default (d.params.n_v is the bucket-level model value).
  return o;
}

void NoteDecisionOutcome(const ScheduleDecision& d, uint64_t tuples,
                         uint64_t measured_nanos, ExecStats* stats) {
  if (stats == nullptr || d.entry == nullptr) return;
  SchedDecisionStats& s = stats->scheduler[d.class_key];
  if (s.entry.empty()) {
    s.entry = d.entry->name();
    s.params = d.params.ToString();
    s.calibrated = d.calibrated;
  }
  ++s.jobs;
  s.tuples += tuples;
  s.measured_nanos += measured_nanos;
  double predicted = d.predicted_ns_per_tuple * static_cast<double>(tuples);
  s.predicted_nanos += predicted;
  // Noise floor: only jobs big enough for the clock to mean something can
  // count as mispredictions.
  constexpr uint64_t kMinTuples = 4096;
  if (tuples >= kMinTuples && predicted > 0 &&
      (static_cast<double>(measured_nanos) > 2.0 * predicted ||
       2.0 * static_cast<double>(measured_nanos) < predicted)) {
    ++s.mispredictions;
    ++stats->mispredictions;
  }
}

// --- Calibration ----------------------------------------------------------

bool CostCalibration::Lookup(const std::string& entry,
                             const std::string& class_key,
                             double* ns_per_tuple) const {
  auto it = costs_.find(MapKey(entry, class_key));
  if (it == costs_.end()) return false;
  *ns_per_tuple = it->second;
  return true;
}

void CostCalibration::Set(const std::string& entry,
                          const std::string& class_key, double ns_per_tuple) {
  costs_[MapKey(entry, class_key)] = ns_per_tuple;
}

namespace {

constexpr char kCalibMagic[8] = {'E', 'T', 'S', 'Q', 'P', 'C', 'A', 'L'};
constexpr uint32_t kCalibVersion = 1;

void PutU16BE(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v));
}

void PutU32BE(std::vector<uint8_t>* out, uint32_t v) {
  for (int s = 24; s >= 0; s -= 8) {
    out->push_back(static_cast<uint8_t>(v >> s));
  }
}

void PutU64BE(std::vector<uint8_t>* out, uint64_t v) {
  for (int s = 56; s >= 0; s -= 8) {
    out->push_back(static_cast<uint8_t>(v >> s));
  }
}

uint32_t GetU32BE(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | p[3];
}

uint64_t GetU64BE(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

/// A synthetic probe page for one (width, codec) bucket: deltas alternate
/// between -ceil(2^w/2) and +floor(2^w/2) so the residual packing width is
/// exactly w while values stay bounded (the narrow int32 form applies, as
/// it does for real IoT series).
Result<storage::Page> MakeProbePage(int width, enc::ColumnEncoding venc,
                                    uint32_t n) {
  int64_t range = width >= 62 ? (int64_t{1} << 40) : (int64_t{1} << width) - 1;
  int64_t down = range / 2;
  int64_t up = range - down;
  std::vector<int64_t> times(n);
  std::vector<int64_t> values(n);
  int64_t v = range;  // headroom so values never go negative
  for (uint32_t i = 0; i < n; ++i) {
    times[i] = static_cast<int64_t>(i);
    v += (i % 2 == 0) ? up : -down;
    values[i] = v;
  }
  storage::PageOptions options;
  options.value_encoding = venc;
  return storage::BuildPage(times.data(), values.data(), n, options);
}

/// Best-of-k wall time for one entry's aggregation over a probe page, in
/// ns per tuple; negative when the configuration fails.
double MeasureEntry(const storage::Page& page, const PipelineOptions& opt,
                    bool is_float, uint32_t n) {
  constexpr int kReps = 7;
  uint64_t best = UINT64_MAX;
  for (int rep = 0; rep <= kReps; ++rep) {  // rep 0 is warm-up
    uint64_t t0 = metrics::NowNanos();
    Status st;
    if (is_float) {
      FloatAggAccum acc;
      st = AggregateFloatSlice(page, 0, n, TimeRange{}, ValueRange{},
                               AggFunc::kSum, opt, &acc, nullptr);
    } else {
      AggAccum acc;
      st = AggregateSlice(page, 0, n, TimeRange{}, ValueRange{},
                          AggFunc::kSum, opt, &acc, nullptr);
    }
    uint64_t dt = metrics::NowNanos() - t0;
    if (!st.ok()) return -1.0;
    if (rep > 0 && dt < best) best = dt;
  }
  return static_cast<double>(best) / n;
}

}  // namespace

CostCalibration CostCalibration::Measure() {
  CostCalibration cal;
  const SchedulerRegistry& reg = SchedulerRegistry::Global();
  PlanContext ctx;  // canonical probe shape: SUM, no filters, fusion allowed
  const uint32_t n = 4096;

  struct Probe {
    int width;
    enc::ColumnEncoding venc;
  };
  // Packing widths are swept densely because the cache is keyed by the
  // *classified* bucket (encoded bits per value, framing included), which
  // sits above the packing width: a sparse sweep leaves holes real pages
  // land in, and a Lookup miss silently degrades to the static model.
  // Probes that classify into an already-measured bucket are skipped.
  std::vector<Probe> probes;
  for (int w : {1, 2, 3, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24}) {
    probes.push_back({w, enc::ColumnEncoding::kTs2Diff});
  }
  for (int w : {2, 8, 16}) {
    probes.push_back({w, enc::ColumnEncoding::kDeltaRle});
    probes.push_back({w, enc::ColumnEncoding::kFastLanes});
  }

  PipelineOptions base = PipelineOptions::Etsqp(1).WithRegistry(false);
  std::set<std::string> measured;
  for (const Probe& p : probes) {
    Result<storage::Page> page = MakeProbePage(p.width, p.venc, n);
    if (!page.ok()) continue;
    PageClass cls = ClassifyPage(page.value().header);
    if (!measured.insert(cls.Key()).second) continue;
    for (const auto& entry : reg.entries()) {
      if (!entry->CanSchedule(cls, ctx)) continue;
      ScheduleDecision d;
      d.entry = entry.get();
      d.params = entry->Params(cls, ctx);
      double ns = MeasureEntry(page.value(), ApplyDecision(base, d),
                               /*is_float=*/false, n);
      if (ns >= 0) cal.Set(entry->name(), cls.Key(), ns);
    }
  }

  // One float probe so XOR-stream classes get measured rows too.
  {
    std::vector<int64_t> times(n);
    std::vector<double> values(n);
    for (uint32_t i = 0; i < n; ++i) {
      times[i] = static_cast<int64_t>(i);
      values[i] = 20.0 + 0.25 * (i % 64);
    }
    storage::PageOptions options;
    options.value_encoding = enc::ColumnEncoding::kGorillaValue;
    Result<storage::Page> page =
        storage::BuildPageF64(times.data(), values.data(), n, options);
    if (page.ok()) {
      PageClass cls = ClassifyPage(page.value().header);
      for (const auto& entry : reg.entries()) {
        if (!entry->CanSchedule(cls, ctx)) continue;
        ScheduleDecision d;
        d.entry = entry.get();
        d.params = entry->Params(cls, ctx);
        double ns = MeasureEntry(page.value(), ApplyDecision(base, d),
                                 /*is_float=*/true, n);
        if (ns >= 0) cal.Set(entry->name(), cls.Key(), ns);
      }
    }
  }

  // Merge-stage probe: two 4096-element sorted streams with ~50% overlap,
  // timed through intersection + union per schedulable merge entry.
  {
    const size_t mn = n;
    std::vector<int64_t> lt(mn), rt(mn), lv(mn, 0), rv(mn, 0);
    for (size_t i = 0; i < mn; ++i) {
      lt[i] = static_cast<int64_t>(2 * i);
      rt[i] = static_cast<int64_t>(i % 2 == 0 ? 2 * i : 2 * i + 1);
    }
    std::vector<uint32_t> il(mn), ir(mn);
    std::vector<int64_t> out_t(2 * mn), out_v(2 * mn);
    PageClass cls = ClassifyMerge(2);
    for (const auto& entry : reg.entries()) {
      if (!entry->CanSchedule(cls, ctx)) continue;
      simd::MergeIsa isa = MergeEntryIsa(entry->name());
      constexpr int kReps = 7;
      uint64_t best = UINT64_MAX;
      for (int rep = 0; rep <= kReps; ++rep) {  // rep 0 is warm-up
        uint64_t t0 = metrics::NowNanos();
        simd::IntersectIndicesInt64(lt.data(), mn, rt.data(), mn, il.data(),
                                    ir.data(), isa);
        simd::MergeUnionInt64(lt.data(), lv.data(), mn, rt.data(), rv.data(),
                              mn, out_t.data(), out_v.data(), isa);
        uint64_t dt = metrics::NowNanos() - t0;
        if (rep > 0 && dt < best) best = dt;
      }
      cal.Set(entry->name(), cls.Key(),
              static_cast<double>(best) / static_cast<double>(2 * mn));
    }
  }

  // Prune-stage probe: a synthetic 64k-entry index (four SoA bound columns,
  // staggered intervals, ~1% of entries surviving a selective window) swept
  // by each schedulable prune entry's datapath.
  {
    const size_t pn = 65536;
    std::vector<int64_t> tmin(pn), tmax(pn), vmin(pn), vmax(pn);
    for (size_t i = 0; i < pn; ++i) {
      tmin[i] = static_cast<int64_t>(i * 100);
      tmax[i] = static_cast<int64_t>(i * 100 + 99);
      vmin[i] = 0;
      vmax[i] = 1000;
    }
    std::vector<uint64_t> mask((pn + 63) / 64);
    const int64_t t_lo = 0, t_hi = static_cast<int64_t>(pn);  // ~1% survive
    PageClass cls = ClassifyPrune();
    for (const auto& entry : reg.entries()) {
      if (!entry->CanSchedule(cls, ctx)) continue;
      simd::PruneIsa isa = PruneEntryIsa(entry->name());
      constexpr int kReps = 7;
      uint64_t best = UINT64_MAX;
      for (int rep = 0; rep <= kReps; ++rep) {  // rep 0 is warm-up
        uint64_t t0 = metrics::NowNanos();
        simd::PruneScan(tmin.data(), tmax.data(), vmin.data(), vmax.data(),
                        pn, t_lo, t_hi, /*value_active=*/true, 0, 500,
                        mask.data(), isa);
        uint64_t dt = metrics::NowNanos() - t0;
        if (rep > 0 && dt < best) best = dt;
      }
      cal.Set(entry->name(), cls.Key(),
              static_cast<double>(best) / static_cast<double>(pn));
    }
  }
  return cal;
}

Status CostCalibration::SaveToFile(const std::string& path) const {
  std::vector<uint8_t> records;
  for (const auto& [key, ns] : costs_) {
    if (key.size() > UINT16_MAX) continue;
    PutU16BE(&records, static_cast<uint16_t>(key.size()));
    records.insert(records.end(), key.begin(), key.end());
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(ns));
    std::memcpy(&bits, &ns, sizeof(bits));
    PutU64BE(&records, bits);
  }

  std::vector<uint8_t> out;
  out.insert(out.end(), kCalibMagic, kCalibMagic + sizeof(kCalibMagic));
  PutU32BE(&out, kCalibVersion);
  PutU32BE(&out, static_cast<uint32_t>(costs_.size()));
  out.insert(out.end(), records.begin(), records.end());
  PutU32BE(&out, MaskCrc(Crc32c(records.data(), records.size())));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("open for write: " + path);
  size_t written = std::fwrite(out.data(), 1, out.size(), f);
  int rc = std::fclose(f);
  if (written != out.size() || rc != 0) {
    return Status::IoError("short write: " + path);
  }
  return Status::Ok();
}

Result<CostCalibration> CostCalibration::LoadFromFile(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no calibration at " + path);
  std::vector<uint8_t> data;
  uint8_t buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + got);
  }
  std::fclose(f);

  constexpr size_t kHeader = sizeof(kCalibMagic) + 8;  // magic + ver + count
  if (data.size() < kHeader + 4 ||
      std::memcmp(data.data(), kCalibMagic, sizeof(kCalibMagic)) != 0) {
    return Status::Corruption("calibration header mismatch");
  }
  if (GetU32BE(data.data() + sizeof(kCalibMagic)) != kCalibVersion) {
    return Status::Corruption("calibration version mismatch");
  }
  uint32_t count = GetU32BE(data.data() + sizeof(kCalibMagic) + 4);
  const uint8_t* records = data.data() + kHeader;
  size_t records_size = data.size() - kHeader - 4;
  uint32_t crc = GetU32BE(data.data() + data.size() - 4);
  if (UnmaskCrc(crc) != Crc32c(records, records_size)) {
    return Status::Corruption("calibration checksum mismatch");
  }

  CostCalibration cal;
  size_t pos = 0;
  for (uint32_t i = 0; i < count; ++i) {
    if (pos + 2 > records_size) {
      return Status::Corruption("calibration truncated record");
    }
    uint16_t len = static_cast<uint16_t>((records[pos] << 8) | records[pos + 1]);
    pos += 2;
    if (pos + len + 8 > records_size) {
      return Status::Corruption("calibration truncated record");
    }
    std::string key(reinterpret_cast<const char*>(records + pos), len);
    pos += len;
    uint64_t bits = GetU64BE(records + pos);
    pos += 8;
    double ns;
    std::memcpy(&ns, &bits, sizeof(ns));
    cal.costs_[key] = ns;
  }
  if (pos != records_size) {
    return Status::Corruption("calibration trailing bytes");
  }
  return cal;
}

Result<std::shared_ptr<const CostCalibration>> CostCalibration::LoadOrMeasure(
    const std::string& path, bool* measured) {
  if (measured != nullptr) *measured = false;
  Result<CostCalibration> loaded = LoadFromFile(path);
  if (loaded.ok()) {
    return std::make_shared<const CostCalibration>(std::move(loaded).value());
  }
  CostCalibration cal = Measure();
  ETSQP_RETURN_IF_ERROR(cal.SaveToFile(path));
  if (measured != nullptr) *measured = true;
  return std::make_shared<const CostCalibration>(std::move(cal));
}

}  // namespace etsqp::exec
