#ifndef ETSQP_EXEC_EXPLAIN_H_
#define ETSQP_EXEC_EXPLAIN_H_

#include <string>

#include "exec/expr.h"
#include "exec/pipe_builder.h"
#include "exec/pipeline.h"

namespace etsqp::exec {

/// Renders the compiled Pipe plan (Algorithm 2) as an indented operator
/// tree: the merge/aggregate node on top, the per-series decoding pipelines
/// below, and the scan leaves annotated with the header-pruning decisions
/// made at compile time.
std::string RenderExplain(const LogicalPlan& plan,
                          const PipelineOptions& options,
                          const PipelineSpec& spec);

/// EXPLAIN ANALYZE: the same tree followed by the measured execution
/// profile — wall clock, scan/prune counters, and the per-stage breakdown
/// (time, calls, tuples, bytes per pipeline stage).
std::string RenderExplainAnalyze(const LogicalPlan& plan,
                                 const PipelineOptions& options,
                                 const PipelineSpec& spec,
                                 const ExecStats& stats);

/// The profile block alone (used by etsqp_cli's `.stats` display).
std::string RenderStats(const ExecStats& stats);

}  // namespace etsqp::exec

#endif  // ETSQP_EXEC_EXPLAIN_H_
