#ifndef ETSQP_EXEC_SCHEDULER_REGISTRY_H_
#define ETSQP_EXEC_SCHEDULER_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/cost_model.h"
#include "exec/expr.h"
#include "exec/pipeline.h"
#include "simd/merge_simd.h"
#include "simd/prune_simd.h"
#include "storage/page.h"
#include "storage/series_store.h"

namespace etsqp::exec {

/// Kernel-strategy scheduler registry: every decoding/aggregation strategy
/// the engine knows (transposed AVX-512/AVX2 unpack, fused aggregation,
/// SBoost's linear layout, FastLanes FLMM1024, the scalar pipelines) is a
/// registered SchedulerEntry, and Pipe asks the registry which entry to run
/// per *page class* at plan time instead of switching on a hand-set enum.
///
/// Costs come from two sources. The fallback is the paper's Proposition 1
/// instruction-count model (exec/cost_model.h) — cheap, always available,
/// but known to diverge from real decode throughput (Lemire & Boytsov). The
/// preferred source is a CostCalibration: a first-run microbenchmark sweep
/// whose measured ns/tuple per (entry, page class) is cached to disk next to
/// the store (versioned + CRC-framed like WAL records) and loaded on open.

/// Plan-time bucket of one page (or of the unsealed tail): everything the
/// registry needs to choose a kernel without touching the encoded payload.
/// The width bucket is derived from the header as average encoded bits per
/// value (value_bytes * 8 / count, block framing included) rounded up to a
/// fixed grid — the packing width itself is not in the header, but average
/// encoded density is what drives decode cost.
struct PageClass {
  enc::ColumnEncoding value_encoding = enc::ColumnEncoding::kTs2Diff;
  enc::ColumnEncoding time_encoding = enc::ColumnEncoding::kTs2Diff;
  int width_bucket = 0;  // 0 for float columns (XOR streams have no width)
  bool sealed = true;    // false = unsealed in-memory tail
  bool is_float = false;
  // Merge-stage classes: not a page at all but the N-way timestamp
  // merge/intersection work of a binary/correlate/concat plan. Only the
  // etsqp.merge.* entries schedule these.
  bool merge = false;
  int merge_ways = 0;
  // Prune-stage class: the planning-time SIMD scan of the pruning index
  // (storage/pruning_index.h), not a page either. Only the etsqp.prune.*
  // entries schedule it; its calibrated cost is ns per index entry.
  bool prune = false;

  /// Stable cache/display key, e.g. "TS2DIFF/w8", "GORILLA_VALUE/f64",
  /// "tail", "tail/f64", "merge/2way", "prune".
  std::string Key() const;
};

/// Header-only page classification (same function at calibration time and
/// at plan time, so cache keys always line up with planner buckets).
PageClass ClassifyPage(const storage::PageHeader& header);
PageClass ClassifyTail(const storage::SeriesSnapshot& snap);

/// The merge stage of a plan combining `ways` sorted operand streams.
PageClass ClassifyMerge(int ways);

/// The planning-time pruning-index scan of a plan's input series.
PageClass ClassifyPrune();

/// Maps a chosen etsqp.merge.* entry name to the merge-kernel datapath the
/// engine should run; unknown names fall back to BestMergeIsa().
simd::MergeIsa MergeEntryIsa(const std::string& entry_name);

/// Maps a chosen etsqp.prune.* entry name to the index-scan datapath the
/// planner should run; unknown names fall back to BestPruneIsa().
simd::PruneIsa PruneEntryIsa(const std::string& entry_name);

/// The plan-shape facts entries gate on.
struct PlanContext {
  bool aggregate = true;  // kAggregate (incl. sliding windows); else decode
  AggFunc func = AggFunc::kSum;
  bool value_filter = false;
  bool windowed = false;
  bool fusion = true;  // options.fusion (operator fusion permitted)
  bool prune = false;
  int threads = 1;
};

PlanContext MakePlanContext(const LogicalPlan& plan,
                            const PipelineOptions& options);

/// The heuristic parameters a chosen entry runs with. `n_v` is the
/// Proposition 1 default for the class's width bucket — it parameterizes the
/// cost prediction and EXPLAIN output; the transposed kernels still apply
/// the per-block Prop 1 default at decode time (blocks within a page can
/// pack narrower than the page average), unless the user pinned n_v.
struct HeuristicParams {
  DecodeStrategy strategy = DecodeStrategy::kEtsqp;
  int n_v = 0;
  bool fusion = false;      // fused aggregation (Section IV) engaged
  bool transposed = false;  // transposed layout vs linear/natural order

  std::string ToString() const;  // "n_v=6 transposed fused"
};

/// One registered kernel strategy (nvfuser-style scheduler entry): a stable
/// name, a feasibility predicate over (page class, plan shape), the
/// heuristic params it would run with, and a static cost prediction from
/// the Proposition 1 constants. Entries are stateless and process-global.
class SchedulerEntry {
 public:
  virtual ~SchedulerEntry() = default;

  virtual const char* name() const = 0;
  /// Tie-break when predicted costs are equal: higher priority wins.
  virtual int priority() const = 0;
  virtual bool CanSchedule(const PageClass& cls,
                           const PlanContext& ctx) const = 0;
  virtual HeuristicParams Params(const PageClass& cls,
                                 const PlanContext& ctx) const = 0;
  /// Predicted cost in ns per tuple from the static instruction-count model
  /// (abstract clock units read as ns at a 1 GHz reference — the point of
  /// calibration is that this is only a rough ordering).
  virtual double PredictCost(const PageClass& cls, const PlanContext& ctx,
                             const CostConstants& c) const = 0;
};

/// The registry's answer for one page class: which entry, its params, and
/// the cost figure that won the comparison.
struct ScheduleDecision {
  std::string class_key;
  const SchedulerEntry* entry = nullptr;
  HeuristicParams params;
  double predicted_ns_per_tuple = 0;
  bool calibrated = false;  // cost came from the calibration cache
  // Planner bookkeeping for EXPLAIN (pages/tuples this decision covers).
  uint64_t pages = 0;
  uint64_t tuples = 0;
};

/// Measured costs per (entry name, page-class key): the self-tuning half of
/// the cost model. Persisted next to the store as a versioned, CRC-framed
/// file (same discipline as WAL records); a corrupt or version-skewed file
/// fails to load with Corruption and callers fall back to CostConstants.
class CostCalibration {
 public:
  bool Lookup(const std::string& entry, const std::string& class_key,
              double* ns_per_tuple) const;
  void Set(const std::string& entry, const std::string& class_key,
           double ns_per_tuple);
  size_t size() const { return costs_.size(); }
  const std::map<std::string, double>& costs() const { return costs_; }

  /// File layout: "ETSQPCAL" magic | u32 version BE | u32 count BE |
  /// count x (u16 key_len BE | key | u64 f64-bits BE) | u32 masked CRC32C
  /// of the record region BE.
  Status SaveToFile(const std::string& path) const;
  static Result<CostCalibration> LoadFromFile(const std::string& path);

  /// First-run microbenchmark sweep: builds synthetic pages across the
  /// width buckets and codecs the engine schedules, times every entry that
  /// CanSchedule each class, and records best-of ns/tuple. Takes tens of
  /// milliseconds; runs once per store, then lives in the cache file.
  static CostCalibration Measure();

  /// Load `path` if it verifies, else Measure() and save to `path`.
  /// `measured` (optional) reports whether a sweep ran.
  static Result<std::shared_ptr<const CostCalibration>> LoadOrMeasure(
      const std::string& path, bool* measured = nullptr);

 private:
  static std::string MapKey(const std::string& entry,
                            const std::string& class_key) {
    return entry + "|" + class_key;
  }
  std::map<std::string, double> costs_;
};

/// Process-global entry catalog. Propose() returns the cheapest feasible
/// entry for a page class: per candidate, the calibrated cost if the cache
/// holds one, else the static prediction; cost ties break by priority.
class SchedulerRegistry {
 public:
  static const SchedulerRegistry& Global();

  const std::vector<std::unique_ptr<SchedulerEntry>>& entries() const {
    return entries_;
  }
  const SchedulerEntry* Find(const std::string& name) const;

  ScheduleDecision Propose(const PageClass& cls, const PlanContext& ctx,
                           const CostCalibration* calibration,
                           const CostConstants& constants) const;

 private:
  SchedulerRegistry();
  std::vector<std::unique_ptr<SchedulerEntry>> entries_;
};

/// Per-job options realizing a decision: strategy and fusion come from the
/// chosen entry's params; a user-pinned n_v (> 0) is honored, otherwise the
/// kernels keep their per-block Prop 1 default.
PipelineOptions ApplyDecision(const PipelineOptions& base,
                              const ScheduleDecision& d);

/// Records one finished job against its decision into stats->scheduler
/// (predicted vs measured nanos, misprediction check). A misprediction is a
/// job whose measured cost falls outside [1/2, 2x] of the prediction, with
/// a minimum-tuples floor so noise-dominated micro-jobs don't count.
void NoteDecisionOutcome(const ScheduleDecision& d, uint64_t tuples,
                         uint64_t measured_nanos, ExecStats* stats);

}  // namespace etsqp::exec

#endif  // ETSQP_EXEC_SCHEDULER_REGISTRY_H_
