#include "exec/tail_kernel.h"

#include <algorithm>

#include "common/metrics.h"

namespace etsqp::exec {

namespace {

using metrics::ScopedStageTimer;
using metrics::Stage;

metrics::StageBreakdown* StagesOf(const PipelineOptions& opt,
                                  QueryStats* stats) {
  return (opt.collect_stats && stats != nullptr) ? &stats->stages : nullptr;
}

/// [begin, end) positions whose time lies in `trange` (times are sorted).
void TimeBounds(const int64_t* times, size_t n, const TimeRange& trange,
                size_t* begin, size_t* end) {
  *begin = std::lower_bound(times, times + n, trange.lo) - times;
  *end = std::upper_bound(times, times + n, trange.hi) - times;
}

void CountScanned(QueryStats* stats, uint64_t n) {
  if (stats != nullptr) {
    stats->tuples_scanned += n;
    stats->tail_tuples_scanned += n;
  }
}

}  // namespace

Status TailAggregate(const int64_t* times, const int64_t* values, size_t n,
                     const TimeRange& trange, const ValueRange& vrange,
                     AggFunc func, const PipelineOptions& opt,
                     AggAccum* accum, QueryStats* stats) {
  size_t begin, end;
  TimeBounds(times, n, trange, &begin, &end);
  CountScanned(stats, end - begin);
  ScopedStageTimer timer(StagesOf(opt, stats), Stage::kAggregate);
  timer.AddTuples(end - begin);
  const bool need_sq = func == AggFunc::kVariance;
  for (size_t i = begin; i < end; ++i) {
    if (vrange.Contains(values[i])) accum->AddValue(values[i], need_sq);
  }
  return Status::Ok();
}

Status TailAggregateWindows(const int64_t* times, const int64_t* values,
                            size_t n, const SlidingWindow& sw, AggFunc func,
                            const PipelineOptions& opt,
                            std::map<int64_t, AggAccum>* windows,
                            QueryStats* stats) {
  size_t pos = std::lower_bound(times, times + n, sw.t_min) - times;
  CountScanned(stats, n - pos);
  ScopedStageTimer timer(StagesOf(opt, stats), Stage::kAggregate);
  timer.AddTuples(n - pos);
  const bool need_sq = func == AggFunc::kVariance;
  while (pos < n) {
    int64_t k = sw.WindowIndex(times[pos]);
    int64_t wend = sw.WindowStart(k + 1);
    size_t pend = std::lower_bound(times + pos, times + n, wend) - times;
    AggAccum& acc = (*windows)[k];
    for (size_t i = pos; i < pend; ++i) acc.AddValue(values[i], need_sq);
    pos = pend;
  }
  return Status::Ok();
}

Status TailAggregateF64(const int64_t* times, const double* values, size_t n,
                        const TimeRange& trange, const ValueRange& vrange,
                        AggFunc func, const PipelineOptions& opt,
                        FloatAggAccum* accum, QueryStats* stats) {
  size_t begin, end;
  TimeBounds(times, n, trange, &begin, &end);
  CountScanned(stats, end - begin);
  ScopedStageTimer timer(StagesOf(opt, stats), Stage::kAggregate);
  timer.AddTuples(end - begin);
  const bool need_sq = func == AggFunc::kVariance;
  for (size_t i = begin; i < end; ++i) {
    double v = values[i];
    // The value filter compares doubles against the int64 range, mirroring
    // AggregateFloatSlice.
    if (vrange.active && (v < static_cast<double>(vrange.lo) ||
                          v > static_cast<double>(vrange.hi))) {
      continue;
    }
    accum->AddValue(v, need_sq);
  }
  return Status::Ok();
}

Status TailAggregateWindowsF64(const int64_t* times, const double* values,
                               size_t n, const SlidingWindow& sw,
                               AggFunc func, const PipelineOptions& opt,
                               std::map<int64_t, FloatAggAccum>* windows,
                               QueryStats* stats) {
  size_t pos = std::lower_bound(times, times + n, sw.t_min) - times;
  CountScanned(stats, n - pos);
  ScopedStageTimer timer(StagesOf(opt, stats), Stage::kAggregate);
  timer.AddTuples(n - pos);
  const bool need_sq = func == AggFunc::kVariance;
  while (pos < n) {
    int64_t k = sw.WindowIndex(times[pos]);
    int64_t wend = sw.WindowStart(k + 1);
    size_t pend = std::lower_bound(times + pos, times + n, wend) - times;
    FloatAggAccum& acc = (*windows)[k];
    for (size_t i = pos; i < pend; ++i) acc.AddValue(values[i], need_sq);
    pos = pend;
  }
  return Status::Ok();
}

Status TailMaterialize(const int64_t* times, const int64_t* values, size_t n,
                       const TimeRange& trange, const ValueRange& vrange,
                       const PipelineOptions& opt,
                       std::vector<int64_t>* out_times,
                       std::vector<int64_t>* out_values, QueryStats* stats) {
  size_t begin, end;
  TimeBounds(times, n, trange, &begin, &end);
  // Both columns are inspected, matching MaterializeSlice's accounting.
  CountScanned(stats, 2 * (end - begin));
  ScopedStageTimer timer(StagesOf(opt, stats), Stage::kFilter);
  timer.AddTuples(end - begin);
  for (size_t i = begin; i < end; ++i) {
    if (!vrange.Contains(values[i])) continue;
    out_times->push_back(times[i]);
    out_values->push_back(values[i]);
  }
  return Status::Ok();
}

}  // namespace etsqp::exec
