#include "exec/pipe_builder.h"

#include <algorithm>
#include <map>
#include <string>

namespace etsqp::exec {

DecisionCache::DecisionCache(const LogicalPlan& plan,
                             const PipelineOptions& options,
                             PipelineSpec* spec)
    : enabled_(options.use_registry),
      ctx_(MakePlanContext(plan, options)),
      calibration_(options.calibration.get()),
      spec_(spec) {}

int DecisionCache::Decide(const PageClass& cls) {
  if (!enabled_) return -1;
  std::string key = cls.Key();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  ScheduleDecision d = SchedulerRegistry::Global().Propose(
      cls, ctx_, calibration_, CostConstants{});
  int idx =
      d.entry == nullptr ? -1 : static_cast<int>(spec_->decisions.size());
  if (idx >= 0) spec_->decisions.push_back(std::move(d));
  index_.emplace(std::move(key), idx);
  return idx;
}

void DecisionCache::Cover(int idx, uint64_t pages, uint64_t tuples) {
  if (idx < 0) return;
  spec_->decisions[idx].pages += pages;
  spec_->decisions[idx].tuples += tuples;
}

namespace {

/// Effective time range of the plan (explicit filter intersected with the
/// sliding-window span, which bounds qualifying timestamps from below).
TimeRange EffectiveTimeRange(const LogicalPlan& plan) {
  TimeRange r = plan.time_filter;
  if (plan.window.active) r.lo = std::max(r.lo, plan.window.t_min);
  return r;
}

/// The query's value bounds in the shared pruning key domain: raw int64
/// for integer series, OrderedValueKey of the widened doubles for float
/// series. Float page headers carry bit-cast doubles — comparing them as
/// raw int64 is wrong for negative values (and NaN would mis-prune), so
/// every header/leaf/envelope compare goes through this one domain.
void QueryValueKeys(const ValueRange& vrange, bool is_float, int64_t* q_lo,
                    int64_t* q_hi) {
  if (is_float) {
    *q_lo = storage::OrderedValueKey(static_cast<double>(vrange.lo));
    *q_hi = storage::OrderedValueKey(static_cast<double>(vrange.hi));
  } else {
    *q_lo = vrange.lo;
    *q_hi = vrange.hi;
  }
}

/// Collects the non-pruned page indices and counts of one input snapshot.
/// A page whose whole [min_time, max_time] sits inside a tombstone is
/// pruned like a header miss; a partially covered page survives but is
/// flagged masked (scalar drain with per-tuple tombstone filtering).
void CollectPages(const storage::SeriesSnapshot& snap,
                  const TimeRange& trange, const ValueRange& vrange,
                  bool prune_values, std::vector<size_t>* page_indices,
                  std::vector<size_t>* page_counts,
                  std::vector<char>* page_masked, QueryStats* stats) {
  const auto& pages = snap.pages;
  const bool value_active = prune_values && vrange.active;
  int64_t q_lo = 0, q_hi = 0;
  if (value_active) QueryValueKeys(vrange, snap.is_float, &q_lo, &q_hi);
  for (size_t p = 0; p < pages.size(); ++p) {
    const storage::PageHeader& h = pages[p]->header;
    ++stats->pages_total;
    stats->tuples_in_pages += h.count;
    if (!trange.Overlaps(h.min_time, h.max_time)) {
      ++stats->pages_pruned;
      continue;
    }
    bool masked = false;
    if (!snap.tombstones.empty() &&
        storage::IntervalsOverlap(snap.tombstones, h.min_time, h.max_time)) {
      if (storage::IntervalsCover(snap.tombstones, h.min_time, h.max_time)) {
        ++stats->pages_pruned;
        ++stats->pages_pruned_deleted;
        continue;
      }
      masked = true;
    }
    // Header value stats are not valid filters on a masked page: the
    // surviving (non-deleted) subset may have a tighter range.
    if (!masked && value_active) {
      int64_t lo, hi;
      if (storage::HeaderValueKeys(h, snap.is_float, &lo, &hi) &&
          (hi < q_lo || lo > q_hi)) {
        ++stats->pages_pruned;
        continue;
      }
    }
    stats->bytes_loaded += pages[p]->encoded_bytes();
    page_indices->push_back(p);
    page_counts->push_back(h.count);
    page_masked->push_back(masked ? 1 : 0);
  }
}

/// Index-probed replacement for CollectPages: one SIMD interval scan over
/// the snapshot's leaf block (bit-exact with the page headers) decides
/// time/value survival for every sealed page at once; only survivors touch
/// a header cacheline. When tombstones exist the scan runs time-only and
/// the tombstone/value logic replays per survivor — a masked page is kept
/// even when its value bounds miss, exactly the CollectPages rule, so the
/// surviving page set is identical to the linear walk's by construction.
void CollectPagesIndexed(const storage::SeriesSnapshot& snap,
                         const TimeRange& trange, const ValueRange& vrange,
                         bool prune_values, simd::PruneIsa isa,
                         std::vector<size_t>* page_indices,
                         std::vector<size_t>* page_counts,
                         std::vector<char>* page_masked, QueryStats* stats) {
  const storage::PruneLeaves& leaves = *snap.prune_leaves;
  const size_t n = leaves.count();
  stats->pages_total += n;
  stats->tuples_in_pages += leaves.total_tuples();
  if (n == 0) return;
  const bool value_active = prune_values && vrange.active;
  int64_t q_lo = 0, q_hi = 0;
  if (value_active) QueryValueKeys(vrange, snap.is_float, &q_lo, &q_hi);
  const bool scan_values = value_active && snap.tombstones.empty();
  std::vector<uint64_t> mask((n + 63) / 64);
  size_t survivors = simd::PruneScan(
      leaves.time_min(), leaves.time_max(), leaves.value_min(),
      leaves.value_max(), n, trange.lo, trange.hi, scan_values, q_lo, q_hi,
      mask.data(), isa);
  stats->pages_pruned += n - survivors;
  stats->pages_pruned_index += n - survivors;
  for (size_t w = 0; w < mask.size(); ++w) {
    uint64_t word = mask[w];
    while (word != 0) {
      size_t p = (w << 6) + static_cast<size_t>(__builtin_ctzll(word));
      word &= word - 1;
      const storage::PageHeader& h = snap.pages[p]->header;
      bool masked = false;
      if (!snap.tombstones.empty() &&
          storage::IntervalsOverlap(snap.tombstones, h.min_time,
                                    h.max_time)) {
        if (storage::IntervalsCover(snap.tombstones, h.min_time,
                                    h.max_time)) {
          ++stats->pages_pruned;
          ++stats->pages_pruned_deleted;
          continue;
        }
        masked = true;
      }
      // NaN-bounded float pages carry the full-range sentinel in the leaf
      // block, so this compare can never drop them.
      if (!masked && value_active && !scan_values &&
          (leaves.value_max()[p] < q_lo || leaves.value_min()[p] > q_hi)) {
        ++stats->pages_pruned;
        ++stats->pages_pruned_index;
        continue;
      }
      stats->bytes_loaded += snap.pages[p]->encoded_bytes();
      page_indices->push_back(p);
      page_counts->push_back(h.count);
      page_masked->push_back(masked ? 1 : 0);
    }
  }
}

/// Tail analogue of the page-header check: snapshot-captured min/max stats
/// decide whether the tail can contribute at all.
bool TailSurvivesPruning(const storage::SeriesSnapshot& snap,
                         const TimeRange& trange, const ValueRange& vrange,
                         bool prune_values) {
  if (!trange.Overlaps(snap.tail_min_time(), snap.tail_max_time())) {
    return false;
  }
  if (prune_values && vrange.active) {
    if (snap.is_float) {
      if (snap.tail_max_value_f64 < static_cast<double>(vrange.lo) ||
          snap.tail_min_value_f64 > static_cast<double>(vrange.hi)) {
        return false;
      }
    } else if (snap.tail_max_value < vrange.lo ||
               snap.tail_min_value > vrange.hi) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<std::vector<storage::SeriesSnapshot>> ResolveInputs(
    const LogicalPlan& plan, const storage::SeriesStore& store) {
  return ResolveInputs(plan, [&store](const std::string& name) {
    return store.GetSnapshot(name);
  });
}

Result<std::vector<storage::SeriesSnapshot>> ResolveInputs(
    const LogicalPlan& plan, const SnapshotResolver& resolve) {
  std::vector<storage::SeriesSnapshot> inputs;
  Result<storage::SeriesSnapshot> left = resolve(plan.series);
  if (!left.ok()) return left.status();
  inputs.push_back(std::move(left).value());
  if (plan.kind == LogicalPlan::Kind::kProjectBinary ||
      plan.kind == LogicalPlan::Kind::kUnion ||
      plan.kind == LogicalPlan::Kind::kJoin ||
      plan.kind == LogicalPlan::Kind::kCorrelate) {
    Result<storage::SeriesSnapshot> right = resolve(plan.series_right);
    if (!right.ok()) return right.status();
    inputs.push_back(std::move(right).value());
  }
  return inputs;
}

Result<PipelineSpec> BuildPipeline(
    const LogicalPlan& plan,
    const std::vector<storage::SeriesSnapshot>& inputs,
    const PipelineOptions& options) {
  PipelineSpec spec;
  TimeRange trange = EffectiveTimeRange(plan);
  DecisionCache decisions(plan, options, &spec);

  // The pruning-index scan is itself a scheduled kernel: one registry
  // decision (memoized by the "prune" class) covers every input's probe.
  // Without the registry, a pinned kSerial strategy pins the scalar scan
  // too; any other pin keeps the best available datapath.
  int prune_decision = -1;
  simd::PruneIsa prune_isa = simd::BestPruneIsa();
  if (options.prune_index) {
    if (options.use_registry) {
      prune_decision = decisions.Decide(ClassifyPrune());
      if (prune_decision >= 0) {
        prune_isa =
            PruneEntryIsa(spec.decisions[prune_decision].entry->name());
      }
    } else if (options.strategy == DecodeStrategy::kSerial) {
      prune_isa = simd::PruneIsa::kScalar;
    }
  }

  for (size_t in = 0; in < inputs.size(); ++in) {
    const storage::SeriesSnapshot& snap = inputs[in];
    std::vector<size_t> page_indices;
    std::vector<size_t> page_counts;
    std::vector<char> page_masked;
    // Store-resolved snapshots carry the pruning index (leaf block + series
    // envelope) captured under the same lock as the page list; hand-built
    // snapshots (file scans, tests) fall back to the linear header walk.
    const bool use_index = options.prune_index &&
                           snap.prune_leaves != nullptr &&
                           snap.prune_leaves->count() == snap.pages.size();
    if (use_index) {
      const uint64_t probe_t0 = metrics::NowNanos();
      // Tombstones disable the envelope's value dimension: the linear walk
      // keeps a partially deleted page no matter its value bounds (masked
      // drain), so a value-based series skip could drop a page the linear
      // scan schedules. Time pruning is unaffected — deletes never extend
      // a series' time range.
      const bool value_active = options.prune && plan.value_filter.active &&
                                snap.tombstones.empty();
      int64_t q_lo = 0, q_hi = 0;
      if (value_active) {
        QueryValueKeys(plan.value_filter, snap.is_float, &q_lo, &q_hi);
      }
      // Level-1 check: the series envelope conservatively covers every
      // point ever ingested (pages, tail, OOO buffers), so an envelope
      // miss skips the whole input — leaf scan, headers and tail alike.
      const storage::SeriesSummary& sum = snap.summary;
      const bool series_live =
          sum.HasData() && trange.Overlaps(sum.time_min, sum.time_max) &&
          (!value_active ||
           (sum.value_min_key <= q_hi && sum.value_max_key >= q_lo));
      if (!series_live) {
        ++spec.plan_stats.series_pruned;
        spec.plan_stats.pages_total += snap.prune_leaves->count();
        spec.plan_stats.pages_pruned += snap.prune_leaves->count();
        spec.plan_stats.pages_pruned_index += snap.prune_leaves->count();
        spec.plan_stats.tuples_in_pages +=
            snap.prune_leaves->total_tuples() + snap.tail_times.size();
        spec.plan_stats.tail_tuples += snap.tail_times.size();
        spec.plan_stats.index_probe_nanos += metrics::NowNanos() - probe_t0;
        decisions.Cover(prune_decision, snap.prune_leaves->count(), 1);
        continue;
      }
      CollectPagesIndexed(snap, trange, plan.value_filter, options.prune,
                          prune_isa, &page_indices, &page_counts,
                          &page_masked, &spec.plan_stats);
      const uint64_t probe_ns = metrics::NowNanos() - probe_t0;
      spec.plan_stats.index_probe_nanos += probe_ns;
      decisions.Cover(prune_decision, snap.prune_leaves->count(),
                      snap.prune_leaves->count());
      if (options.collect_stats && prune_decision >= 0) {
        NoteDecisionOutcome(spec.decisions[prune_decision],
                            snap.prune_leaves->count(), probe_ns,
                            &spec.plan_stats);
      }
    } else {
      CollectPages(snap, trange, plan.value_filter, options.prune,
                   &page_indices, &page_counts, &page_masked,
                   &spec.plan_stats);
    }
    // Registry lookup per surviving page (memoized per page class). Masked
    // pages bypass the registry — they drain through the scalar masked
    // path, not a vectorized kernel.
    std::vector<int> page_decisions(page_indices.size(), -1);
    for (size_t p = 0; p < page_indices.size(); ++p) {
      if (page_masked[p] != 0) continue;
      const storage::PageHeader& h = snap.pages[page_indices[p]]->header;
      page_decisions[p] = decisions.Decide(ClassifyPage(h));
      decisions.Cover(page_decisions[p], 1, h.count);
    }
    // Lines 5-6 of Algorithm 2: slice pages when cores outnumber them.
    // Only unmasked pages slice; masked pages run whole (one job each),
    // merged back in page order so per-input concatenation of job outputs
    // stays in time order.
    std::vector<size_t> slice_counts;
    std::vector<size_t> slice_pos;  // position within page_indices
    for (size_t p = 0; p < page_indices.size(); ++p) {
      if (page_masked[p] != 0) continue;
      slice_pos.push_back(p);
      slice_counts.push_back(page_counts[p]);
    }
    std::vector<PageSlice> slices =
        PlanSlices(slice_counts, options.threads, 1024);
    size_t cursor = 0;  // slices arrive ordered by page then begin
    for (size_t p = 0; p < page_indices.size(); ++p) {
      if (page_masked[p] != 0) {
        spec.jobs.push_back(PipeJob{static_cast<int>(in), page_indices[p], 0,
                                    page_counts[p], false, -1, true});
        continue;
      }
      while (cursor < slices.size() &&
             slice_pos[slices[cursor].page_index] == p) {
        const PageSlice& s = slices[cursor];
        spec.jobs.push_back(PipeJob{static_cast<int>(in), page_indices[p],
                                    s.begin, s.end, false,
                                    page_decisions[p], false});
        ++cursor;
      }
    }
    // The unsealed tail rides behind the sealed pages of its input: one
    // scalar job, emitted last so concatenation keeps time order. Tail
    // tuples count into tuples_in_pages (they are part of the scan's
    // input volume) and into the tail_tuples breakout.
    if (snap.has_tail()) {
      spec.plan_stats.tuples_in_pages += snap.tail_times.size();
      spec.plan_stats.tail_tuples += snap.tail_times.size();
      if (TailSurvivesPruning(snap, trange, plan.value_filter,
                              options.prune)) {
        int tail_decision = decisions.Decide(ClassifyTail(snap));
        decisions.Cover(tail_decision, 0, snap.tail_times.size());
        spec.jobs.push_back(PipeJob{static_cast<int>(in), 0, 0,
                                    snap.tail_times.size(), true,
                                    tail_decision});
      }
    }
  }
  // Multi-input plans end in a merge stage; plan its kernel through the
  // registry like any page class. The stage sees every surviving input
  // tuple once, so it covers the non-pruned tuple volume.
  if (inputs.size() > 1) {
    spec.merge_decision =
        decisions.Decide(ClassifyMerge(static_cast<int>(inputs.size())));
    decisions.Cover(spec.merge_decision, 0, spec.plan_stats.tuples_in_pages);
  }
  return spec;
}

Result<PipelineSpec> BuildPipeline(const LogicalPlan& plan,
                                   const storage::SeriesStore& store,
                                   const PipelineOptions& options) {
  Result<std::vector<storage::SeriesSnapshot>> inputs =
      ResolveInputs(plan, store);
  if (!inputs.ok()) return inputs.status();
  return BuildPipeline(plan, inputs.value(), options);
}

}  // namespace etsqp::exec
