#include "exec/pipe_builder.h"

#include <algorithm>

namespace etsqp::exec {

namespace {

/// Effective time range of the plan (explicit filter intersected with the
/// sliding-window span, which bounds qualifying timestamps from below).
TimeRange EffectiveTimeRange(const LogicalPlan& plan) {
  TimeRange r = plan.time_filter;
  if (plan.window.active) r.lo = std::max(r.lo, plan.window.t_min);
  return r;
}

/// Collects the non-pruned page indices and counts of one input series.
Status CollectPages(const storage::SeriesStore& store,
                    const std::string& name, const TimeRange& trange,
                    const ValueRange& vrange, bool prune_values,
                    std::vector<size_t>* page_indices,
                    std::vector<size_t>* page_counts, QueryStats* stats) {
  Result<const storage::SeriesStore::Series*> series = store.GetSeries(name);
  if (!series.ok()) return series.status();
  const auto& pages = series.value()->pages;
  for (size_t p = 0; p < pages.size(); ++p) {
    const storage::PageHeader& h = pages[p].header;
    ++stats->pages_total;
    stats->tuples_in_pages += h.count;
    if (!trange.Overlaps(h.min_time, h.max_time)) {
      ++stats->pages_pruned;
      continue;
    }
    if (prune_values && vrange.active &&
        (h.max_value < vrange.lo || h.min_value > vrange.hi)) {
      ++stats->pages_pruned;
      continue;
    }
    stats->bytes_loaded += pages[p].encoded_bytes();
    page_indices->push_back(p);
    page_counts->push_back(h.count);
  }
  return Status::Ok();
}

}  // namespace

Result<PipelineSpec> BuildPipeline(const LogicalPlan& plan,
                                   const storage::SeriesStore& store,
                                   const PipelineOptions& options) {
  PipelineSpec spec;
  TimeRange trange = EffectiveTimeRange(plan);

  std::vector<std::string> inputs{plan.series};
  if (plan.kind == LogicalPlan::Kind::kProjectBinary ||
      plan.kind == LogicalPlan::Kind::kUnion ||
      plan.kind == LogicalPlan::Kind::kJoin ||
      plan.kind == LogicalPlan::Kind::kCorrelate) {
    inputs.push_back(plan.series_right);
  }

  for (size_t in = 0; in < inputs.size(); ++in) {
    std::vector<size_t> page_indices;
    std::vector<size_t> page_counts;
    ETSQP_RETURN_IF_ERROR(CollectPages(store, inputs[in], trange,
                                       plan.value_filter, options.prune,
                                       &page_indices, &page_counts,
                                       &spec.plan_stats));
    // Lines 5-6 of Algorithm 2: slice pages when cores outnumber them.
    std::vector<PageSlice> slices =
        PlanSlices(page_counts, options.threads, 1024);
    for (const PageSlice& s : slices) {
      spec.jobs.push_back(PipeJob{static_cast<int>(in),
                                  page_indices[s.page_index], s.begin,
                                  s.end});
    }
  }
  return spec;
}

}  // namespace etsqp::exec
