#include "exec/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace etsqp::exec {

namespace {
/// The pool the current thread is a worker of (nullptr outside worker
/// threads). Paired with ThreadPool::tls_slot_: both are only meaningful
/// when tls_pool matches the pool being asked.
thread_local ThreadPool* tls_pool = nullptr;
}  // namespace

thread_local int ThreadPool::tls_slot_ = -1;

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool(int target_workers) {
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw <= 0) hw = 2;
  target_ = std::clamp(target_workers > 0 ? target_workers : hw, 1, kMaxWorkers);
  for (int i = 0; i < target_; ++i) slots_[i] = std::make_unique<WorkerSlot>();
  num_slots_.store(target_, std::memory_order_release);
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Reserve(int workers) {
  std::lock_guard<std::mutex> lk(mu_);
  int want = std::clamp(workers, 1, kMaxWorkers);
  if (want <= target_) return;
  for (int i = target_; i < want; ++i) {
    slots_[i] = std::make_unique<WorkerSlot>();
  }
  target_ = want;
  num_slots_.store(want, std::memory_order_release);
  // New workers launch lazily on the next Submit; if the pool is already
  // live, bring them up now so a running query's TaskGroup benefits.
  if (!threads_.empty() && !stop_) StartWorkersLocked();
}

int ThreadPool::target_workers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return target_;
}

int ThreadPool::workers_running() const {
  return running_.load(std::memory_order_acquire);
}

uint64_t ThreadPool::threads_started() const {
  return threads_started_.load(std::memory_order_acquire);
}

metrics::PoolStats ThreadPool::stats() const {
  metrics::PoolStats s;
  s.tasks = tasks_executed_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.parks = parks_.load(std::memory_order_relaxed);
  s.park_nanos = park_nanos_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::StartWorkersLocked() {
  while (static_cast<int>(threads_.size()) < target_) {
    int slot = static_cast<int>(threads_.size());
    threads_.emplace_back([this, slot] { WorkerLoop(slot); });
    threads_started_.fetch_add(1, std::memory_order_relaxed);
    running_.fetch_add(1, std::memory_order_release);
  }
}

void ThreadPool::Submit(Task task) {
  // Lazy spin-up: the first submission (or the first after Shutdown)
  // launches the workers. The double-checked running_ read keeps the warm
  // path off mu_ except for the lost-wakeup fence below.
  if (running_.load(std::memory_order_acquire) <
      num_slots_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!stop_) StartWorkersLocked();
  }
  int n = num_slots_.load(std::memory_order_acquire);
  int home = (tls_pool == this) ? tls_slot_ : -1;
  int idx = home >= 0
                ? home
                : static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) %
                                   static_cast<uint64_t>(n));
  {
    std::lock_guard<std::mutex> lk(slots_[idx]->mu);
    slots_[idx]->q.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  // Lost-wakeup fence: a worker that read queued_ == 0 under mu_ is either
  // already inside wait() (this lock can only be taken after it released
  // mu_) or will re-check queued_. Either way notify_one lands.
  { std::lock_guard<std::mutex> lk(mu_); }
  park_cv_.notify_one();
}

bool ThreadPool::TryAcquire(Task* out, int home_slot) {
  int n = num_slots_.load(std::memory_order_acquire);
  if (n <= 0) return false;
  // Own deque first, from the back: LIFO keeps nested work cache-warm.
  if (home_slot >= 0 && home_slot < n) {
    WorkerSlot& s = *slots_[home_slot];
    std::lock_guard<std::mutex> lk(s.mu);
    if (!s.q.empty()) {
      *out = std::move(s.q.back());
      s.q.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal from the front of a victim's deque: the oldest task is the
  // coarsest-granularity work and the least likely to be cache-warm there.
  int start = home_slot >= 0 ? home_slot + 1 : 0;
  for (int k = 0; k < n; ++k) {
    int v = (start + k) % n;
    if (v == home_slot) continue;
    WorkerSlot& s = *slots_[v];
    std::lock_guard<std::mutex> lk(s.mu);
    if (!s.q.empty()) {
      *out = std::move(s.q.front());
      s.q.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::RunTask(Task&& task) {
  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  if (task.group != nullptr) task.group->OnTaskDone(error);
}

void ThreadPool::WorkerLoop(int slot) {
  tls_pool = this;
  tls_slot_ = slot;
  for (;;) {
    Task task;
    if (TryAcquire(&task, slot)) {
      RunTask(std::move(task));
      continue;
    }
    std::unique_lock<std::mutex> lk(mu_);
    if (stop_) break;  // queues drained: deterministic shutdown
    if (queued_.load(std::memory_order_acquire) > 0) continue;
    parks_.fetch_add(1, std::memory_order_relaxed);
    uint64_t t0 = metrics::NowNanos();
    park_cv_.wait(lk, [this] {
      return stop_ || queued_.load(std::memory_order_acquire) > 0;
    });
    park_nanos_.fetch_add(metrics::NowNanos() - t0,
                          std::memory_order_relaxed);
    if (stop_ && queued_.load(std::memory_order_acquire) == 0) break;
  }
  running_.fetch_sub(1, std::memory_order_release);
  tls_pool = nullptr;
  tls_slot_ = -1;
}

void ThreadPool::Shutdown() {
  std::deque<std::thread> joinable;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (threads_.empty()) return;
    stop_ = true;
    joinable.swap(threads_);
  }
  park_cv_.notify_all();
  for (std::thread& t : joinable) t.join();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = false;  // ready for lazy re-init on the next Submit
  }
}

// --------------------------------------------------------------- TaskGroup

TaskGroup::TaskGroup(ThreadPool* pool) : pool_(pool) {}

TaskGroup::~TaskGroup() {
  try {
    Wait();
  } catch (...) {
    // Destructor waits for completion but cannot surface the exception;
    // callers that care call Wait() themselves.
  }
}

void TaskGroup::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++pending_;
  }
  pool_->Submit(ThreadPool::Task{std::move(fn), this});
}

void TaskGroup::OnTaskDone(std::exception_ptr error) {
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  if (error != nullptr && first_error_ == nullptr) first_error_ = error;
  if (--pending_ == 0) cv_.notify_all();
}

void TaskGroup::Wait() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (pending_ == 0) break;
    }
    // Help: drain pool tasks while the group is outstanding. Own (nested)
    // tasks come first via the home deque; the helper may also pick up an
    // unrelated group's task — that is what lets nested submission compose
    // without idle waiters or deadlock on a saturated pool.
    ThreadPool::Task task;
    int home = (tls_pool == pool_) ? ThreadPool::tls_slot_ : -1;
    if (pool_->TryAcquire(&task, home)) {
      pool_->RunTask(std::move(task));
      continue;
    }
    // Nothing runnable: our tasks are in flight on workers (or racing into
    // a deque). Sleep on completion, re-polling briefly for the race.
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_for(lk, std::chrono::microseconds(200),
                 [this] { return pending_ == 0; });
    if (pending_ == 0) break;
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lk(mu_);
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace etsqp::exec
