#ifndef ETSQP_ENCODING_CHIMP_H_
#define ETSQP_ENCODING_CHIMP_H_

#include <cstdint>

#include "common/status.h"
#include "encoding/format.h"

namespace etsqp::enc {

/// Chimp (paper Table I): XOR float compression with 2-bit flags and a
/// rounded leading-zero table. Improves on Gorilla for values with short
/// XOR tails:
///   flag 00: XOR == 0 (repeat)
///   flag 01: XOR has >= 6 trailing zeros — write 3-bit rounded leading-zero
///            class, 6-bit significant length, then the center bits
///   flag 10: leading-zero class equal to previous — write (64 - prev_lead)
///            tail bits
///   flag 11: new leading-zero class — write 3-bit class then tail bits
class ChimpEncoder {
 public:
  EncodedColumn Encode(const uint64_t* words, size_t n) const;
  EncodedColumn EncodeDoubles(const double* values, size_t n) const;
};

Status ChimpDecode(const EncodedColumn& col, uint64_t* out);
Status ChimpDecodeDoubles(const EncodedColumn& col, double* out);

}  // namespace etsqp::enc

#endif  // ETSQP_ENCODING_CHIMP_H_
