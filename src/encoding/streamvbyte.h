#ifndef ETSQP_ENCODING_STREAMVBYTE_H_
#define ETSQP_ENCODING_STREAMVBYTE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "encoding/format.h"

namespace etsqp::enc {

/// StreamVByte (Plaisance, Kurz & Lemire, "Vectorized VByte Decoding"),
/// widened to 64-bit deltas for timestamp columns: the control stream is
/// separated from the data stream so a vectorized decoder can translate
/// each control byte into one shuffle instead of branching per byte. The
/// ingest-side encoder is branch-light and byte-aligned — a fast-ingest
/// alternative to TS2DIFF's bit-packed blocks.
///
/// Serialized layout:
///   u32 count | i64 first_value
///   | control bytes: ceil((count-1)/4), 2 bits per delta
///   | data bytes: little-endian zigzag deltas
/// Control code c in {0,1,2,3} means the delta occupies 1 << c bytes
/// (1, 2, 4, 8) — the four classes cover the full int64 range, so encoding
/// never fails. Delta i (1-based) owns bits 2*((i-1)%4) of control byte
/// (i-1)/4; unused trailing slots of the last control byte are zero.

class StreamVByteEncoder {
 public:
  EncodedColumn Encode(const int64_t* values, size_t n) const;
};

class StreamVByteColumn {
 public:
  static Result<StreamVByteColumn> Parse(const uint8_t* data, size_t size);

  uint32_t count() const { return count_; }
  int64_t first_value() const { return first_value_; }

  /// Raw streams, for the vectorized decoder in src/simd.
  const uint8_t* control() const { return control_; }
  size_t control_bytes() const { return control_bytes_; }
  const uint8_t* data() const { return data_; }
  size_t data_bytes() const { return data_bytes_; }

  /// Reference scalar decode into out[count()].
  Status DecodeAll(int64_t* out) const;

 private:
  uint32_t count_ = 0;
  int64_t first_value_ = 0;
  const uint8_t* control_ = nullptr;
  size_t control_bytes_ = 0;
  const uint8_t* data_ = nullptr;
  size_t data_bytes_ = 0;
};

}  // namespace etsqp::enc

#endif  // ETSQP_ENCODING_STREAMVBYTE_H_
