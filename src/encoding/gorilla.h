#ifndef ETSQP_ENCODING_GORILLA_H_
#define ETSQP_ENCODING_GORILLA_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "encoding/format.h"

namespace etsqp::enc {

/// Gorilla (paper Table I): the Facebook in-memory TSDB format. Timestamps
/// use delta-of-delta (+-^2) with prefix-coded residual classes; values use
/// XOR against the predecessor with a flag bit for repeats and pattern-based
/// packing of the meaningful XOR bits (leading-zeros / length window reuse).

/// --- Timestamp column (int64, delta-of-delta) ---------------------------
/// Prefix classes: '0' dod==0, '10' 7-bit, '110' 9-bit, '1110' 12-bit,
/// '1111' 64-bit raw. Residuals are zigzagged before class selection.
class GorillaTimestampEncoder {
 public:
  EncodedColumn Encode(const int64_t* values, size_t n) const;
};

Status GorillaTimestampDecode(const EncodedColumn& col, int64_t* out);

/// --- Value column (doubles or raw 64-bit words, XOR pattern) ------------
/// Flags: '0' same as previous; '10' XOR fits in the previous
/// leading/length window (write window bits); '11' new window (5-bit leading
/// zero count, 6-bit significant length, then the bits).
class GorillaValueEncoder {
 public:
  EncodedColumn Encode(const uint64_t* words, size_t n) const;
  EncodedColumn EncodeDoubles(const double* values, size_t n) const;
};

Status GorillaValueDecode(const EncodedColumn& col, uint64_t* out);
Status GorillaValueDecodeDoubles(const EncodedColumn& col, double* out);

}  // namespace etsqp::enc

#endif  // ETSQP_ENCODING_GORILLA_H_
