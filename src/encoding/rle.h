#ifndef ETSQP_ENCODING_RLE_H_
#define ETSQP_ENCODING_RLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace etsqp::enc {

/// Plain run-length encoding of a value sequence (the "Repeat" operator of
/// paper Table I): consecutive equal values collapse into (value, run) pairs.
/// Used standalone for low-cardinality columns and as the Repeat stage inside
/// the combined encoders (DeltaRle, RLBE).

struct Run {
  int64_t value = 0;
  uint32_t length = 0;
};

/// Collapses `values[0..n)` into runs (order-preserving).
std::vector<Run> RleEncode(const int64_t* values, size_t n);

/// Expands runs back into `out`, which must hold the total run length.
/// Returns the number of values written.
size_t RleDecode(const std::vector<Run>& runs, int64_t* out);

/// Total expanded length of `runs`.
size_t RleTotalLength(const std::vector<Run>& runs);

}  // namespace etsqp::enc

#endif  // ETSQP_ENCODING_RLE_H_
