#include "encoding/elf.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "common/bitstream.h"
#include "encoding/chimp.h"

namespace etsqp::enc {

namespace {

double RoundToPrecision(double v, int precision) {
  double scale = std::pow(10.0, precision);
  return std::nearbyint(v * scale) / scale;
}

/// Zeroes the lowest `bits` mantissa bits of `v`.
double EraseLowBits(double v, int bits) {
  uint64_t w;
  std::memcpy(&w, &v, 8);
  w &= ~((bits >= 64 ? ~0ull : ((1ull << bits) - 1)));
  double out;
  std::memcpy(&out, &w, 8);
  return out;
}

}  // namespace

int ElfDecimalPrecision(double v, int max_precision) {
  if (!std::isfinite(v)) return -1;
  for (int p = 0; p <= max_precision; ++p) {
    if (RoundToPrecision(v, p) == v) return p;
  }
  return -1;
}

EncodedColumn ElfEncoder::EncodeDoubles(const double* values,
                                        size_t n) const {
  // Pass 1: erase what is erasable and build the side channel.
  std::vector<uint64_t> erased(n);
  BitWriter side;
  for (size_t i = 0; i < n; ++i) {
    double v = values[i];
    int prec = ElfDecimalPrecision(v, max_precision_);
    double best = v;
    if (prec >= 0 && prec < 16) {
      // Find the largest erasure that rounds back exactly.
      for (int bits = 48; bits >= 1; --bits) {
        double cand = EraseLowBits(v, bits);
        if (cand == v) break;  // nothing to erase at/below this level
        if (RoundToPrecision(cand, prec) == v) {
          best = cand;
          break;
        }
      }
    }
    if (best != v && prec >= 0 && prec < 16) {
      side.WriteBit(1);
      side.WriteBits(static_cast<uint64_t>(prec), 4);
    } else {
      side.WriteBit(0);
      best = v;
    }
    std::memcpy(&erased[i], &best, 8);
  }
  // Pass 2: XOR-compress the erased words with the Chimp backend.
  ChimpEncoder backend;
  EncodedColumn inner = backend.Encode(erased.data(), n);

  EncodedColumn col;
  col.encoding = ColumnEncoding::kElf;
  col.count = static_cast<uint32_t>(n);
  std::vector<uint8_t> side_bytes = side.TakeBuffer();
  PutFixed32BE(&col.bytes, static_cast<uint32_t>(side_bytes.size()));
  col.bytes.insert(col.bytes.end(), side_bytes.begin(), side_bytes.end());
  col.bytes.insert(col.bytes.end(), inner.bytes.begin(), inner.bytes.end());
  return col;
}

Status ElfDecodeDoubles(const EncodedColumn& col, double* out) {
  const uint8_t* data = col.bytes.data();
  size_t size = col.bytes.size();
  if (size < 4) return Status::Corruption("elf: header truncated");
  uint32_t side_bytes = GetFixed32BE(data);
  if (4 + side_bytes > size) return Status::Corruption("elf: side truncated");

  EncodedColumn inner;
  inner.encoding = ColumnEncoding::kChimp;
  inner.count = col.count;
  inner.bytes.assign(data + 4 + side_bytes, data + size);
  std::vector<uint64_t> words(col.count);
  ETSQP_RETURN_IF_ERROR(ChimpDecode(inner, words.data()));

  BitReader side(data + 4, side_bytes);
  for (uint32_t i = 0; i < col.count; ++i) {
    double v;
    std::memcpy(&v, &words[i], 8);
    if (side.ReadBit()) {
      int prec = static_cast<int>(side.ReadBits(4));
      v = RoundToPrecision(v, prec);
    }
    if (side.exhausted()) return Status::Corruption("elf: side truncated");
    out[i] = v;
  }
  return Status::Ok();
}

}  // namespace etsqp::enc
