#ifndef ETSQP_ENCODING_GENERIC_COMPRESS_H_
#define ETSQP_ENCODING_GENERIC_COMPRESS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace etsqp::enc {

/// Generic byte-oriented LZ compressor (LZ4-style greedy hash matcher).
/// Stand-in for the HDFS block compressor in the Figure 13 system
/// comparison: it is type-blind, so it misses the delta structure IoT
/// encoders exploit — reproducing the paper's "HDFS compressor is not
/// efficient enough to reduce I/O" observation.
///
/// Token stream: u8 literal_len | u8 match_len | literals | u16 offset(BE).
/// Lengths >= 255 continue with extra bytes (LZ4 convention). A match_len of
/// 0 with offset 0 means "no match" (end-of-stream literals).
std::vector<uint8_t> LzCompress(const uint8_t* data, size_t size);

/// Decompresses into `out`; `expected_size` must match the original size.
Status LzDecompress(const uint8_t* data, size_t size, uint8_t* out,
                    size_t expected_size);

}  // namespace etsqp::enc

#endif  // ETSQP_ENCODING_GENERIC_COMPRESS_H_
