#include "encoding/chimp.h"

#include <bit>
#include <cstring>
#include <vector>

#include "common/bitstream.h"

namespace etsqp::enc {

namespace {

// Chimp rounds leading-zero counts down to one of 8 classes.
constexpr int kLeadClass[8] = {0, 8, 12, 16, 18, 20, 22, 24};

int LeadToClass(int lead) {
  int cls = 0;
  for (int i = 7; i >= 0; --i) {
    if (lead >= kLeadClass[i]) {
      cls = i;
      break;
    }
  }
  return cls;
}

}  // namespace

EncodedColumn ChimpEncoder::Encode(const uint64_t* words, size_t n) const {
  EncodedColumn col;
  col.encoding = ColumnEncoding::kChimp;
  col.count = static_cast<uint32_t>(n);
  std::vector<uint8_t>& out = col.bytes;
  PutFixed32BE(&out, static_cast<uint32_t>(n));
  PutFixed64BE(&out, n > 0 ? words[0] : 0);

  BitWriter w;
  uint64_t prev = n > 0 ? words[0] : 0;
  int prev_cls = 0;
  for (size_t i = 1; i < n; ++i) {
    uint64_t x = words[i] ^ prev;
    prev = words[i];
    if (x == 0) {
      w.WriteBits(0b00, 2);
      continue;
    }
    int lead = std::countl_zero(x);
    int trail = std::countr_zero(x);
    int cls = LeadToClass(lead);
    int cls_lead = kLeadClass[cls];
    if (trail >= 6) {
      // flag 01: center bits with explicit length.
      int len = 64 - cls_lead - trail;
      w.WriteBits(0b01, 2);
      w.WriteBits(static_cast<uint64_t>(cls), 3);
      w.WriteBits(static_cast<uint64_t>(len), 6);
      w.WriteBits(x >> trail, len);
      prev_cls = cls;
    } else if (cls == prev_cls) {
      // flag 10: reuse class, write full tail.
      w.WriteBits(0b10, 2);
      w.WriteBits(x, 64 - kLeadClass[prev_cls]);
    } else {
      // flag 11: new class, write full tail.
      w.WriteBits(0b11, 2);
      w.WriteBits(static_cast<uint64_t>(cls), 3);
      w.WriteBits(x, 64 - cls_lead);
      prev_cls = cls;
    }
  }
  std::vector<uint8_t> stream = w.TakeBuffer();
  out.insert(out.end(), stream.begin(), stream.end());
  return col;
}

EncodedColumn ChimpEncoder::EncodeDoubles(const double* values,
                                          size_t n) const {
  std::vector<uint64_t> words(n);
  std::memcpy(words.data(), values, n * sizeof(double));
  return Encode(words.data(), n);
}

Status ChimpDecode(const EncodedColumn& col, uint64_t* out) {
  const uint8_t* data = col.bytes.data();
  size_t size = col.bytes.size();
  if (size < 12) return Status::Corruption("chimp: header truncated");
  uint32_t n = GetFixed32BE(data);
  if (n != col.count) return Status::Corruption("chimp: count mismatch");
  if (n == 0) return Status::Ok();
  out[0] = GetFixed64BE(data + 4);

  BitReader r(data + 12, size - 12);
  uint64_t prev = out[0];
  int prev_cls = 0;
  for (size_t i = 1; i < n; ++i) {
    uint32_t flag = static_cast<uint32_t>(r.ReadBits(2));
    uint64_t x = 0;
    switch (flag) {
      case 0b00:
        break;
      case 0b01: {
        int cls = static_cast<int>(r.ReadBits(3));
        int len = static_cast<int>(r.ReadBits(6));
        uint64_t bits = r.ReadBits(len);
        int trail = 64 - kLeadClass[cls] - len;
        x = bits << trail;
        prev_cls = cls;
        break;
      }
      case 0b10:
        x = r.ReadBits(64 - kLeadClass[prev_cls]);
        break;
      case 0b11: {
        int cls = static_cast<int>(r.ReadBits(3));
        x = r.ReadBits(64 - kLeadClass[cls]);
        prev_cls = cls;
        break;
      }
    }
    if (r.exhausted()) return Status::Corruption("chimp: truncated");
    prev ^= x;
    out[i] = prev;
  }
  return Status::Ok();
}

Status ChimpDecodeDoubles(const EncodedColumn& col, double* out) {
  std::vector<uint64_t> words(col.count);
  ETSQP_RETURN_IF_ERROR(ChimpDecode(col, words.data()));
  std::memcpy(out, words.data(), col.count * sizeof(double));
  return Status::Ok();
}

}  // namespace etsqp::enc
