#ifndef ETSQP_ENCODING_ELF_H_
#define ETSQP_ENCODING_ELF_H_

#include <cstdint>

#include "common/status.h"
#include "encoding/format.h"

namespace etsqp::enc {

/// Elf (paper Table I): erasing-based lossless float compression. For each
/// double we find the number of low mantissa bits that can be zeroed such
/// that rounding the erased value to the original's decimal precision
/// restores it exactly. The erased word (long trailing-zero tail) is then
/// XOR-compressed (Chimp backend); a small side channel records the decimal
/// precision needed to undo the erasure.
///
/// Per value: flag bit (1 = erased, followed by a 4-bit precision field;
/// 0 = stored verbatim through the XOR stage).
class ElfEncoder {
 public:
  /// `max_precision` bounds the decimal-place search (Elf's alpha).
  explicit ElfEncoder(int max_precision = 12)
      : max_precision_(max_precision) {}

  EncodedColumn EncodeDoubles(const double* values, size_t n) const;

 private:
  int max_precision_;
};

Status ElfDecodeDoubles(const EncodedColumn& col, double* out);

/// Exposed for tests: number of decimal places after which `v` printed and
/// re-parsed reproduces itself, or -1 if more than `max_precision` needed.
int ElfDecimalPrecision(double v, int max_precision);

}  // namespace etsqp::enc

#endif  // ETSQP_ENCODING_ELF_H_
