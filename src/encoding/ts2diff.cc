#include "encoding/ts2diff.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/bitstream.h"
#include "encoding/bitpack.h"

namespace etsqp::enc {

EncodedColumn Ts2DiffEncoder::Encode(const int64_t* values, size_t n) const {
  EncodedColumn col;
  col.encoding = ColumnEncoding::kTs2Diff;
  col.count = static_cast<uint32_t>(n);
  std::vector<uint8_t>& out = col.bytes;

  uint32_t num_blocks =
      n == 0 ? 0 : static_cast<uint32_t>(CeilDiv(n, block_size_));
  PutFixed32BE(&out, static_cast<uint32_t>(n));
  PutFixed32BE(&out, block_size_);
  PutFixed32BE(&out, num_blocks);

  std::vector<uint64_t> residuals;
  for (size_t s = 0; s < n; s += block_size_) {
    size_t e = std::min(n, s + block_size_);
    size_t m = e - s - 1;  // deltas in block

    int64_t min_delta = 0;
    int64_t max_delta = 0;
    int64_t min_value = values[s];
    int64_t max_value = values[s];
    if (m > 0) {
      min_delta = values[s + 1] - values[s];
      max_delta = min_delta;
      for (size_t i = s + 1; i < e; ++i) {
        int64_t d = values[i] - values[i - 1];
        min_delta = std::min(min_delta, d);
        max_delta = std::max(max_delta, d);
        min_value = std::min(min_value, values[i]);
        max_value = std::max(max_value, values[i]);
      }
    }
    int width = BitWidth(static_cast<uint64_t>(max_delta - min_delta));

    PutFixed32BE(&out, static_cast<uint32_t>(m));
    out.push_back(static_cast<uint8_t>(width));
    PutFixed64BE(&out, static_cast<uint64_t>(min_delta));
    PutFixed64BE(&out, static_cast<uint64_t>(values[s]));
    PutFixed64BE(&out, static_cast<uint64_t>(min_value));
    PutFixed64BE(&out, static_cast<uint64_t>(max_value));

    residuals.clear();
    residuals.reserve(m);
    for (size_t i = s + 1; i < e; ++i) {
      int64_t d = values[i] - values[i - 1];
      residuals.push_back(static_cast<uint64_t>(d - min_delta));
    }
    BitWriter writer;
    PackBE(residuals.data(), residuals.size(), width, &writer);
    std::vector<uint8_t> packed = writer.TakeBuffer();
    out.insert(out.end(), packed.begin(), packed.end());
  }
  return col;
}

int64_t Ts2DiffBlock::delta_upper_bound() const {
  if (width >= 63) return INT64_MAX;  // conservative
  return min_delta + static_cast<int64_t>(MaskLow64(width));
}

Result<Ts2DiffColumn> Ts2DiffColumn::Parse(const uint8_t* data, size_t size) {
  if (size < 12) return Status::Corruption("ts2diff: header truncated");
  Ts2DiffColumn col;
  col.count_ = GetFixed32BE(data);
  col.block_size_ = GetFixed32BE(data + 4);
  uint32_t num_blocks = GetFixed32BE(data + 8);
  size_t pos = 12;
  uint32_t idx = 0;
  col.blocks_.reserve(num_blocks);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    if (pos + 37 > size) return Status::Corruption("ts2diff: block truncated");
    Ts2DiffBlock blk;
    blk.num_deltas = GetFixed32BE(data + pos);
    blk.width = data[pos + 4];
    blk.min_delta = static_cast<int64_t>(GetFixed64BE(data + pos + 5));
    blk.first_value = static_cast<int64_t>(GetFixed64BE(data + pos + 13));
    blk.min_value = static_cast<int64_t>(GetFixed64BE(data + pos + 21));
    blk.max_value = static_cast<int64_t>(GetFixed64BE(data + pos + 29));
    blk.start_index = idx;
    pos += 37;
    blk.packed = data + pos;
    blk.packed_bytes = PackedBytes(blk.num_deltas, blk.width);
    if (pos + blk.packed_bytes > size) {
      return Status::Corruption("ts2diff: packed data truncated");
    }
    pos += blk.packed_bytes;
    idx += blk.num_values();
    col.blocks_.push_back(blk);
  }
  if (idx != col.count_) {
    return Status::Corruption("ts2diff: value count mismatch");
  }
  return col;
}

void Ts2DiffColumn::DecodeBlock(const Ts2DiffBlock& block, int64_t* out) {
  out[0] = block.first_value;
  int64_t prev = block.first_value;
  size_t pos = 0;
  for (uint32_t i = 0; i < block.num_deltas; ++i) {
    uint64_t r = UnpackOneBE(block.packed, pos, block.width);
    pos += block.width;
    prev += block.min_delta + static_cast<int64_t>(r);
    out[i + 1] = prev;
  }
}

Status Ts2DiffColumn::DecodeAll(int64_t* out) const {
  for (const Ts2DiffBlock& blk : blocks_) {
    DecodeBlock(blk, out + blk.start_index);
  }
  return Status::Ok();
}

}  // namespace etsqp::enc
