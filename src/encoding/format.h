#ifndef ETSQP_ENCODING_FORMAT_H_
#define ETSQP_ENCODING_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace etsqp::enc {

/// Column encodings supported by the storage engine. The first group are the
/// combined IoT encoders of paper Table I; kFastLanes is the FLMM1024
/// baseline layout; kPlain stores raw 64-bit values (debug/reference).
enum class ColumnEncoding : uint8_t {
  kPlain = 0,
  kTs2Diff = 1,    // Delta(+-, min-base) + BitPack       [TS_2DIFF]
  kDeltaRle = 2,   // Delta + Repeat + BitPack             [Section IV format]
  kRlbe = 3,       // Delta + Run-length + Fibonacci       [RLBE]
  kSprintz = 4,    // Delta + ZigZag + BitPack             [Sprintz]
  kGorilla = 5,    // Delta-of-delta / XOR + pattern       [Gorilla]
  kChimp = 6,      // XOR + pattern                        [Chimp]
  kElf = 7,        // erase + XOR + pattern                [Elf]
  kFastLanes = 8,  // FLMM1024 transposed Delta + BitPack  [FastLanes]
  // Float (double) value encodings — XOR/pattern family of Table I.
  kGorillaValue = 9,
  kChimpValue = 10,
  kElfValue = 11,
  // Split control/data byte streams for vectorized decode  [StreamVByte]
  kStreamVByte = 12,
};

/// True for the double-typed value encodings.
inline bool IsFloatEncoding(ColumnEncoding e) {
  return e == ColumnEncoding::kGorillaValue ||
         e == ColumnEncoding::kChimpValue || e == ColumnEncoding::kElfValue;
}

inline const char* ColumnEncodingName(ColumnEncoding e) {
  switch (e) {
    case ColumnEncoding::kPlain:
      return "PLAIN";
    case ColumnEncoding::kTs2Diff:
      return "TS2DIFF";
    case ColumnEncoding::kDeltaRle:
      return "DELTA_RLE";
    case ColumnEncoding::kRlbe:
      return "RLBE";
    case ColumnEncoding::kSprintz:
      return "SPRINTZ";
    case ColumnEncoding::kGorilla:
      return "GORILLA";
    case ColumnEncoding::kChimp:
      return "CHIMP";
    case ColumnEncoding::kElf:
      return "ELF";
    case ColumnEncoding::kFastLanes:
      return "FASTLANES";
    case ColumnEncoding::kGorillaValue:
      return "GORILLA_VALUE";
    case ColumnEncoding::kChimpValue:
      return "CHIMP";
    case ColumnEncoding::kElfValue:
      return "ELF";
    case ColumnEncoding::kStreamVByte:
      return "STREAMVBYTE";
  }
  return "UNKNOWN";
}

/// A serialized encoded column: `count` logical values in `bytes`.
struct EncodedColumn {
  ColumnEncoding encoding = ColumnEncoding::kPlain;
  uint32_t count = 0;
  std::vector<uint8_t> bytes;
};

}  // namespace etsqp::enc

#endif  // ETSQP_ENCODING_FORMAT_H_
