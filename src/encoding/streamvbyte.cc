#include "encoding/streamvbyte.h"

#include "common/bit_util.h"
#include "common/bitstream.h"

namespace etsqp::enc {

EncodedColumn StreamVByteEncoder::Encode(const int64_t* values,
                                         size_t n) const {
  EncodedColumn col;
  col.encoding = ColumnEncoding::kStreamVByte;
  col.count = static_cast<uint32_t>(n);
  std::vector<uint8_t>& out = col.bytes;
  PutFixed32BE(&out, static_cast<uint32_t>(n));
  PutFixed64BE(&out, n > 0 ? static_cast<uint64_t>(values[0]) : 0);
  if (n < 2) return col;
  const size_t deltas = n - 1;
  const size_t ctrl_off = out.size();
  out.resize(ctrl_off + (deltas + 3) / 4, 0);
  for (size_t i = 1; i < n; ++i) {
    // Wrap-safe delta in the uint64 domain (same value bits as int64).
    uint64_t delta = static_cast<uint64_t>(values[i]) -
                     static_cast<uint64_t>(values[i - 1]);
    uint64_t z = ZigZagEncode64(static_cast<int64_t>(delta));
    unsigned code = z <= 0xFF             ? 0
                    : z <= 0xFFFF         ? 1
                    : z <= 0xFFFFFFFFull  ? 2
                                          : 3;
    out[ctrl_off + (i - 1) / 4] |=
        static_cast<uint8_t>(code << (2 * ((i - 1) % 4)));
    size_t len = size_t{1} << code;
    for (size_t b = 0; b < len; ++b) {
      out.push_back(static_cast<uint8_t>(z >> (8 * b)));
    }
  }
  return col;
}

Result<StreamVByteColumn> StreamVByteColumn::Parse(const uint8_t* data,
                                                   size_t size) {
  if (size < 12) return Status::Corruption("streamvbyte: header truncated");
  StreamVByteColumn col;
  col.count_ = GetFixed32BE(data);
  col.first_value_ = static_cast<int64_t>(GetFixed64BE(data + 4));
  const size_t deltas = col.count_ > 0 ? col.count_ - 1 : 0;
  col.control_bytes_ = (deltas + 3) / 4;
  if (12 + col.control_bytes_ > size) {
    return Status::Corruption("streamvbyte: control truncated");
  }
  col.control_ = data + 12;
  col.data_ = data + 12 + col.control_bytes_;
  col.data_bytes_ = size - 12 - col.control_bytes_;
  // Every delta takes 1 to 8 data bytes; anything outside that envelope is
  // structurally corrupt regardless of control contents.
  if (col.data_bytes_ < deltas || col.data_bytes_ > 8 * deltas) {
    return Status::Corruption("streamvbyte: data size out of range");
  }
  return col;
}

Status StreamVByteColumn::DecodeAll(int64_t* out) const {
  if (count_ == 0) return Status::Ok();
  out[0] = first_value_;
  uint64_t prev = static_cast<uint64_t>(first_value_);
  size_t pos = 0;
  for (uint32_t i = 1; i < count_; ++i) {
    unsigned code = (control_[(i - 1) >> 2] >> (2 * ((i - 1) & 3))) & 3;
    size_t len = size_t{1} << code;
    if (pos + len > data_bytes_) {
      return Status::Corruption("streamvbyte: data truncated");
    }
    uint64_t z = 0;
    for (size_t b = 0; b < len; ++b) {
      z |= static_cast<uint64_t>(data_[pos + b]) << (8 * b);
    }
    pos += len;
    prev += static_cast<uint64_t>(ZigZagDecode64(z));
    out[i] = static_cast<int64_t>(prev);
  }
  if (pos != data_bytes_) {
    return Status::Corruption("streamvbyte: trailing data bytes");
  }
  return Status::Ok();
}

}  // namespace etsqp::enc
