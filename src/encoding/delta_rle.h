#ifndef ETSQP_ENCODING_DELTA_RLE_H_
#define ETSQP_ENCODING_DELTA_RLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "encoding/format.h"

namespace etsqp::enc {

/// Delta-Repeat-Packing: the combined format of paper Sections IV-V and the
/// Figure 12 micro-benchmarks. The value sequence is Delta-encoded, the delta
/// sequence is run-length encoded into <delta, run> pairs (a run of length r
/// expands to r consecutive steps of the same delta — an arithmetic
/// progression), and both the delta and run columns are bit-packed with a
/// frame-of-reference base.
///
/// Serialized layout (fixed fields Big-Endian):
///   u32 count | u32 num_pairs | u8 delta_width | u8 run_width
///   i64 min_delta (the paper's minBase) | i64 first_value
///   packed (delta - min_delta) x num_pairs   (byte-aligned)
///   packed (run - 1)          x num_pairs    (byte-aligned)
///
/// Header statistics give the pruning bounds of Propositions 4-5:
///   D_m = min_delta, D_M = min_delta + 2^delta_width - 1,
///   R_M = 2^run_width (max run length).

class DeltaRleEncoder {
 public:
  EncodedColumn Encode(const int64_t* values, size_t n) const;
};

/// One <delta, run> pair.
struct DeltaRun {
  int64_t delta = 0;
  uint32_t run = 0;
};

/// Parsed (zero-copy) Delta-RLE column view.
class DeltaRleColumn {
 public:
  static Result<DeltaRleColumn> Parse(const uint8_t* data, size_t size);

  uint32_t count() const { return count_; }
  uint32_t num_pairs() const { return num_pairs_; }
  uint8_t delta_width() const { return delta_width_; }
  uint8_t run_width() const { return run_width_; }
  int64_t min_delta() const { return min_delta_; }
  int64_t first_value() const { return first_value_; }

  const uint8_t* packed_deltas() const { return packed_deltas_; }
  const uint8_t* packed_runs() const { return packed_runs_; }

  /// Pruning bounds (Propositions 4-5).
  int64_t delta_lower_bound() const { return min_delta_; }
  int64_t delta_upper_bound() const;
  uint32_t max_run_bound() const;  // R_M

  /// Scalar decode of the <delta, run> pair list.
  Status DecodePairs(std::vector<DeltaRun>* out) const;

  /// Reference scalar decode of the whole column into out[count()].
  Status DecodeAll(int64_t* out) const;

 private:
  uint32_t count_ = 0;
  uint32_t num_pairs_ = 0;
  uint8_t delta_width_ = 0;
  uint8_t run_width_ = 0;
  int64_t min_delta_ = 0;
  int64_t first_value_ = 0;
  const uint8_t* packed_deltas_ = nullptr;
  size_t packed_delta_bytes_ = 0;
  const uint8_t* packed_runs_ = nullptr;
  size_t packed_run_bytes_ = 0;
};

}  // namespace etsqp::enc

#endif  // ETSQP_ENCODING_DELTA_RLE_H_
