#include "encoding/sprintz.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/bitstream.h"
#include "encoding/bitpack.h"

namespace etsqp::enc {

EncodedColumn SprintzEncoder::Encode(const int64_t* values, size_t n) const {
  EncodedColumn col;
  col.encoding = ColumnEncoding::kSprintz;
  col.count = static_cast<uint32_t>(n);
  std::vector<uint8_t>& out = col.bytes;
  PutFixed32BE(&out, static_cast<uint32_t>(n));
  PutFixed64BE(&out, n > 0 ? static_cast<uint64_t>(values[0]) : 0);

  std::vector<uint64_t> zz;
  for (size_t s = 1; s < n; s += kBlockValues) {
    size_t e = std::min(n, s + kBlockValues);
    zz.clear();
    uint64_t max_zz = 0;
    for (size_t i = s; i < e; ++i) {
      uint64_t z = ZigZagEncode64(values[i] - values[i - 1]);
      zz.push_back(z);
      max_zz = std::max(max_zz, z);
    }
    int width = BitWidth(max_zz);
    out.push_back(static_cast<uint8_t>(width));
    BitWriter writer;
    PackBE(zz.data(), zz.size(), width, &writer);
    std::vector<uint8_t> packed = writer.TakeBuffer();
    out.insert(out.end(), packed.begin(), packed.end());
  }
  return col;
}

Result<SprintzColumn> SprintzColumn::Parse(const uint8_t* data, size_t size) {
  if (size < 12) return Status::Corruption("sprintz: header truncated");
  SprintzColumn col;
  col.count_ = GetFixed32BE(data);
  col.first_value_ = static_cast<int64_t>(GetFixed64BE(data + 4));
  col.blocks_ = data + 12;
  col.blocks_bytes_ = size - 12;
  return col;
}

Status SprintzColumn::DecodeAll(int64_t* out) const {
  if (count_ == 0) return Status::Ok();
  out[0] = first_value_;
  int64_t prev = first_value_;
  size_t pos = 1;
  size_t byte = 0;
  uint64_t vals[SprintzEncoder::kBlockValues];
  while (pos < count_) {
    if (byte >= blocks_bytes_) {
      return Status::Corruption("sprintz: block header truncated");
    }
    int width = blocks_[byte++];
    size_t m = std::min<size_t>(SprintzEncoder::kBlockValues, count_ - pos);
    if (!UnpackBE64(blocks_ + byte, blocks_bytes_ - byte, 0, m, width, vals)) {
      return Status::Corruption("sprintz: packed data truncated");
    }
    byte += PackedBytes(m, width);
    for (size_t i = 0; i < m; ++i) {
      prev += ZigZagDecode64(vals[i]);
      out[pos++] = prev;
    }
  }
  return Status::Ok();
}

}  // namespace etsqp::enc
