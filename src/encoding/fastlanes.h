#ifndef ETSQP_ENCODING_FASTLANES_H_
#define ETSQP_ENCODING_FASTLANES_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "encoding/format.h"

namespace etsqp::enc {

/// FastLanes FLMM1024 Delta layout (paper Figure 1(c); baseline (4) in the
/// evaluation). Values are grouped into fixed blocks of 1024; inside a block
/// the virtual 1024-bit register is modeled as 32 lanes of 32 values. The
/// base row (the 32 values at block positions i % 32 == 0 ... i.e. row 0:
/// v[0..31]) is stored raw; every other value stores the delta against the
/// value 32 positions earlier (its predecessor in the same lane), so decoding
/// is 31 lane-wise vector additions per block — a single add instruction per
/// recovered row.
///
/// This reproduces FastLanes' documented IoT weaknesses: short series must be
/// padded to 1024 (buffer pressure), the 32-value raw base row and the
/// block-wide packing width reduce the compression ratio, and the layout
/// cannot stack with Repeat/Fibonacci encoders.
///
/// Serialized layout (fixed fields Big-Endian):
///   u32 count | u32 num_blocks
///   per block: u8 width | i64 min_delta | raw base row (32 x i64)
///              packed (delta - min_delta) x 992 (byte-aligned)

class FastLanesEncoder {
 public:
  static constexpr uint32_t kBlockValues = 1024;
  static constexpr uint32_t kLanes = 32;
  static constexpr uint32_t kRows = kBlockValues / kLanes;  // 32

  EncodedColumn Encode(const int64_t* values, size_t n) const;
};

/// Parsed view of one FLMM1024 block.
struct FastLanesBlock {
  uint8_t width = 0;
  int64_t min_delta = 0;
  const uint8_t* base_row = nullptr;  // 32 big-endian i64
  const uint8_t* packed = nullptr;    // 992 deltas
  size_t packed_bytes = 0;
  uint32_t start_index = 0;
  uint32_t num_values = 0;  // logical values (may be < 1024 in last block)
};

class FastLanesColumn {
 public:
  static Result<FastLanesColumn> Parse(const uint8_t* data, size_t size);

  uint32_t count() const { return count_; }
  const std::vector<FastLanesBlock>& blocks() const { return blocks_; }

  /// Reference scalar decode into out[count()].
  Status DecodeAll(int64_t* out) const;

  /// Scalar decode of one block into out[1024] (padded region included).
  static void DecodeBlock(const FastLanesBlock& block, int64_t* out);

 private:
  uint32_t count_ = 0;
  std::vector<FastLanesBlock> blocks_;
};

}  // namespace etsqp::enc

#endif  // ETSQP_ENCODING_FASTLANES_H_
