#include "encoding/delta_rle.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/bitstream.h"
#include "encoding/bitpack.h"

namespace etsqp::enc {

EncodedColumn DeltaRleEncoder::Encode(const int64_t* values, size_t n) const {
  EncodedColumn col;
  col.encoding = ColumnEncoding::kDeltaRle;
  col.count = static_cast<uint32_t>(n);
  std::vector<uint8_t>& out = col.bytes;

  // Delta + run-length the delta sequence.
  std::vector<DeltaRun> pairs;
  int64_t min_delta = 0;
  int64_t max_delta = 0;
  uint32_t max_run = 1;
  if (n > 1) {
    min_delta = values[1] - values[0];
    max_delta = min_delta;
    for (size_t i = 1; i < n;) {
      int64_t d = values[i] - values[i - 1];
      size_t j = i + 1;
      while (j < n && values[j] - values[j - 1] == d) ++j;
      uint32_t run = static_cast<uint32_t>(j - i);
      pairs.push_back(DeltaRun{d, run});
      min_delta = std::min(min_delta, d);
      max_delta = std::max(max_delta, d);
      max_run = std::max(max_run, run);
      i = j;
    }
  }
  int delta_width = BitWidth(static_cast<uint64_t>(max_delta - min_delta));
  int run_width = BitWidth(max_run - 1);

  PutFixed32BE(&out, static_cast<uint32_t>(n));
  PutFixed32BE(&out, static_cast<uint32_t>(pairs.size()));
  out.push_back(static_cast<uint8_t>(delta_width));
  out.push_back(static_cast<uint8_t>(run_width));
  PutFixed64BE(&out, static_cast<uint64_t>(min_delta));
  PutFixed64BE(&out, n > 0 ? static_cast<uint64_t>(values[0]) : 0);

  BitWriter dw;
  for (const DeltaRun& p : pairs) {
    dw.WriteBits(static_cast<uint64_t>(p.delta - min_delta), delta_width);
  }
  std::vector<uint8_t> packed = dw.TakeBuffer();
  out.insert(out.end(), packed.begin(), packed.end());

  BitWriter rw;
  for (const DeltaRun& p : pairs) {
    rw.WriteBits(p.run - 1, run_width);
  }
  packed = rw.TakeBuffer();
  out.insert(out.end(), packed.begin(), packed.end());
  return col;
}

int64_t DeltaRleColumn::delta_upper_bound() const {
  if (delta_width_ >= 63) return INT64_MAX;
  return min_delta_ + static_cast<int64_t>(MaskLow64(delta_width_));
}

uint32_t DeltaRleColumn::max_run_bound() const {
  if (run_width_ >= 32) return UINT32_MAX;
  return MaskLow32(run_width_) + 1;
}

Result<DeltaRleColumn> DeltaRleColumn::Parse(const uint8_t* data,
                                             size_t size) {
  if (size < 26) return Status::Corruption("delta_rle: header truncated");
  DeltaRleColumn col;
  col.count_ = GetFixed32BE(data);
  col.num_pairs_ = GetFixed32BE(data + 4);
  col.delta_width_ = data[8];
  col.run_width_ = data[9];
  col.min_delta_ = static_cast<int64_t>(GetFixed64BE(data + 10));
  col.first_value_ = static_cast<int64_t>(GetFixed64BE(data + 18));
  // A run covers at least one value, so pairs never exceed count - 1.
  if ((col.count_ == 0 && col.num_pairs_ != 0) ||
      (col.count_ > 0 && col.num_pairs_ > col.count_ - 1)) {
    return Status::Corruption("delta_rle: pair count exceeds value count");
  }
  size_t pos = 26;
  col.packed_delta_bytes_ = PackedBytes(col.num_pairs_, col.delta_width_);
  col.packed_run_bytes_ = PackedBytes(col.num_pairs_, col.run_width_);
  if (pos + col.packed_delta_bytes_ + col.packed_run_bytes_ > size) {
    return Status::Corruption("delta_rle: packed data truncated");
  }
  col.packed_deltas_ = data + pos;
  col.packed_runs_ = data + pos + col.packed_delta_bytes_;
  return col;
}

Status DeltaRleColumn::DecodePairs(std::vector<DeltaRun>* out) const {
  out->clear();
  out->reserve(num_pairs_);
  size_t dpos = 0;
  size_t rpos = 0;
  for (uint32_t i = 0; i < num_pairs_; ++i) {
    uint64_t dr = UnpackOneBE(packed_deltas_, dpos, delta_width_);
    dpos += delta_width_;
    uint64_t rr = UnpackOneBE(packed_runs_, rpos, run_width_);
    rpos += run_width_;
    out->push_back(DeltaRun{min_delta_ + static_cast<int64_t>(dr),
                            static_cast<uint32_t>(rr) + 1});
  }
  return Status::Ok();
}

Status DeltaRleColumn::DecodeAll(int64_t* out) const {
  if (count_ == 0) return Status::Ok();
  std::vector<DeltaRun> pairs;
  ETSQP_RETURN_IF_ERROR(DecodePairs(&pairs));
  size_t pos = 0;
  out[pos++] = first_value_;
  int64_t prev = first_value_;
  for (const DeltaRun& p : pairs) {
    for (uint32_t k = 0; k < p.run && pos < count_; ++k) {
      prev += p.delta;
      out[pos++] = prev;
    }
  }
  if (pos != count_) return Status::Corruption("delta_rle: count mismatch");
  return Status::Ok();
}

}  // namespace etsqp::enc
