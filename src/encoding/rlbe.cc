#include "encoding/rlbe.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/bitstream.h"
#include "encoding/fibonacci.h"

namespace etsqp::enc {

EncodedColumn RlbeEncoder::Encode(const int64_t* values, size_t n) const {
  EncodedColumn col;
  col.encoding = ColumnEncoding::kRlbe;
  col.count = static_cast<uint32_t>(n);
  std::vector<uint8_t>& out = col.bytes;
  PutFixed32BE(&out, static_cast<uint32_t>(n));
  PutFixed64BE(&out, n > 0 ? static_cast<uint64_t>(values[0]) : 0);

  BitWriter writer;
  for (size_t i = 1; i < n;) {
    int64_t d = values[i] - values[i - 1];
    size_t j = i + 1;
    while (j < n && values[j] - values[j - 1] == d) ++j;
    uint32_t run = static_cast<uint32_t>(j - i);
    FibonacciEncode(ZigZagEncode64(d), &writer);
    FibonacciEncode(run - 1, &writer);
    i = j;
  }
  std::vector<uint8_t> stream = writer.TakeBuffer();
  out.insert(out.end(), stream.begin(), stream.end());
  return col;
}

Result<RlbeColumn> RlbeColumn::Parse(const uint8_t* data, size_t size) {
  if (size < 12) return Status::Corruption("rlbe: header truncated");
  RlbeColumn col;
  col.count_ = GetFixed32BE(data);
  col.first_value_ = static_cast<int64_t>(GetFixed64BE(data + 4));
  col.stream_ = data + 12;
  col.stream_bytes_ = size - 12;
  return col;
}

Status RlbeColumn::DecodeAll(int64_t* out) const {
  if (count_ == 0) return Status::Ok();
  BitReader reader(stream_, stream_bytes_);
  size_t pos = 0;
  out[pos++] = first_value_;
  int64_t prev = first_value_;
  while (pos < count_) {
    uint64_t zz, rm1;
    if (!FibonacciDecode(&reader, &zz) || !FibonacciDecode(&reader, &rm1)) {
      return Status::Corruption("rlbe: stream truncated");
    }
    int64_t d = ZigZagDecode64(zz);
    uint64_t run = rm1 + 1;
    for (uint64_t k = 0; k < run && pos < count_; ++k) {
      prev += d;
      out[pos++] = prev;
    }
  }
  return Status::Ok();
}

Result<std::vector<RlbeColumn::Anchor>> RlbeColumn::ScanAnchors(
    uint32_t stride) const {
  std::vector<Anchor> anchors;
  if (count_ == 0) return anchors;
  anchors.push_back(Anchor{0, 1, first_value_});
  if (stride == 0) stride = 1;

  BitReader reader(stream_, stream_bytes_);
  uint32_t index = 1;
  int64_t value = first_value_;
  uint32_t last_anchor_index = 1;
  while (index < count_) {
    uint64_t zz, rm1;
    if (!FibonacciDecode(&reader, &zz) || !FibonacciDecode(&reader, &rm1)) {
      return Status::Corruption("rlbe: stream truncated during scan");
    }
    int64_t d = ZigZagDecode64(zz);
    uint64_t run = rm1 + 1;
    uint64_t take = std::min<uint64_t>(run, count_ - index);
    value += d * static_cast<int64_t>(take);
    index += static_cast<uint32_t>(take);
    if (index - last_anchor_index >= stride && index < count_) {
      anchors.push_back(Anchor{reader.bit_pos(), index, value});
      last_anchor_index = index;
    }
  }
  return anchors;
}

Status RlbeColumn::DecodeFrom(const Anchor& anchor, uint32_t end_index,
                              int64_t* out) const {
  end_index = std::min(end_index, count_);
  if (anchor.value_index == 0 || anchor.value_index > count_) {
    return Status::InvalidArgument("rlbe: bad anchor");
  }
  // Contract: `anchor.value` is the decoded value at position
  // value_index - 1; `out` receives positions [value_index, end_index).
  size_t pos = 0;
  uint32_t index = anchor.value_index;
  int64_t prev = anchor.value;
  BitReader reader(stream_, stream_bytes_);
  reader.SeekBits(anchor.bit_pos);
  while (index < end_index) {
    uint64_t zz, rm1;
    if (!FibonacciDecode(&reader, &zz) || !FibonacciDecode(&reader, &rm1)) {
      return Status::Corruption("rlbe: stream truncated");
    }
    int64_t d = ZigZagDecode64(zz);
    uint64_t run = rm1 + 1;
    for (uint64_t k = 0; k < run && index < end_index; ++k) {
      prev += d;
      out[pos++] = prev;
      ++index;
    }
  }
  return Status::Ok();
}

}  // namespace etsqp::enc
