#include "encoding/gorilla.h"

#include <bit>
#include <cstring>

#include "common/bit_util.h"
#include "common/bitstream.h"

namespace etsqp::enc {

namespace {

// Delta-of-delta residual classes (zigzagged): bits used per class.
constexpr int kDodBits7 = 7;
constexpr int kDodBits9 = 9;
constexpr int kDodBits12 = 12;

}  // namespace

EncodedColumn GorillaTimestampEncoder::Encode(const int64_t* values,
                                              size_t n) const {
  EncodedColumn col;
  col.encoding = ColumnEncoding::kGorilla;
  col.count = static_cast<uint32_t>(n);
  std::vector<uint8_t>& out = col.bytes;
  PutFixed32BE(&out, static_cast<uint32_t>(n));
  PutFixed64BE(&out, n > 0 ? static_cast<uint64_t>(values[0]) : 0);
  PutFixed64BE(&out, n > 1 ? static_cast<uint64_t>(values[1]) : 0);

  BitWriter w;
  int64_t prev_delta = n > 1 ? values[1] - values[0] : 0;
  for (size_t i = 2; i < n; ++i) {
    int64_t delta = values[i] - values[i - 1];
    int64_t dod = delta - prev_delta;
    prev_delta = delta;
    uint64_t zz = ZigZagEncode64(dod);
    if (zz == 0) {
      w.WriteBit(0);
    } else if (zz < (1ull << kDodBits7)) {
      w.WriteBits(0b10, 2);
      w.WriteBits(zz, kDodBits7);
    } else if (zz < (1ull << kDodBits9)) {
      w.WriteBits(0b110, 3);
      w.WriteBits(zz, kDodBits9);
    } else if (zz < (1ull << kDodBits12)) {
      w.WriteBits(0b1110, 4);
      w.WriteBits(zz, kDodBits12);
    } else {
      w.WriteBits(0b1111, 4);
      w.WriteBits(zz, 64);
    }
  }
  std::vector<uint8_t> stream = w.TakeBuffer();
  out.insert(out.end(), stream.begin(), stream.end());
  return col;
}

Status GorillaTimestampDecode(const EncodedColumn& col, int64_t* out) {
  const uint8_t* data = col.bytes.data();
  size_t size = col.bytes.size();
  if (size < 20) return Status::Corruption("gorilla-ts: header truncated");
  uint32_t n = GetFixed32BE(data);
  if (n != col.count) return Status::Corruption("gorilla-ts: count mismatch");
  if (n == 0) return Status::Ok();
  out[0] = static_cast<int64_t>(GetFixed64BE(data + 4));
  if (n == 1) return Status::Ok();
  out[1] = static_cast<int64_t>(GetFixed64BE(data + 12));

  BitReader r(data + 20, size - 20);
  int64_t prev_delta = out[1] - out[0];
  int64_t prev = out[1];
  for (size_t i = 2; i < n; ++i) {
    int64_t dod = 0;
    if (r.ReadBit() != 0) {
      int bits;
      if (r.ReadBit() == 0) {
        bits = kDodBits7;
      } else if (r.ReadBit() == 0) {
        bits = kDodBits9;
      } else if (r.ReadBit() == 0) {
        bits = kDodBits12;
      } else {
        bits = 64;
      }
      dod = ZigZagDecode64(r.ReadBits(bits));
    }
    if (r.exhausted()) return Status::Corruption("gorilla-ts: truncated");
    prev_delta += dod;
    prev += prev_delta;
    out[i] = prev;
  }
  return Status::Ok();
}

EncodedColumn GorillaValueEncoder::Encode(const uint64_t* words,
                                          size_t n) const {
  EncodedColumn col;
  col.encoding = ColumnEncoding::kGorilla;
  col.count = static_cast<uint32_t>(n);
  std::vector<uint8_t>& out = col.bytes;
  PutFixed32BE(&out, static_cast<uint32_t>(n));
  PutFixed64BE(&out, n > 0 ? words[0] : 0);

  BitWriter w;
  uint64_t prev = n > 0 ? words[0] : 0;
  int prev_lead = -1;  // invalid: force a new window first
  int prev_len = 0;
  for (size_t i = 1; i < n; ++i) {
    uint64_t x = words[i] ^ prev;
    prev = words[i];
    if (x == 0) {
      w.WriteBit(0);
      continue;
    }
    w.WriteBit(1);
    int lead = std::countl_zero(x);
    int trail = std::countr_zero(x);
    if (lead > 31) lead = 31;  // 5-bit field
    int len = 64 - lead - trail;
    if (prev_lead >= 0 && lead >= prev_lead &&
        64 - lead - trail <= prev_len &&
        trail >= 64 - prev_lead - prev_len) {
      // Fits the previous window: reuse it.
      w.WriteBit(0);
      w.WriteBits(x >> (64 - prev_lead - prev_len), prev_len);
    } else {
      w.WriteBit(1);
      w.WriteBits(static_cast<uint64_t>(lead), 5);
      w.WriteBits(static_cast<uint64_t>(len == 64 ? 0 : len), 6);  // 64 -> 0
      w.WriteBits(x >> trail, len);
      prev_lead = lead;
      prev_len = len;
    }
  }
  std::vector<uint8_t> stream = w.TakeBuffer();
  out.insert(out.end(), stream.begin(), stream.end());
  return col;
}

EncodedColumn GorillaValueEncoder::EncodeDoubles(const double* values,
                                                 size_t n) const {
  std::vector<uint64_t> words(n);
  std::memcpy(words.data(), values, n * sizeof(double));
  return Encode(words.data(), n);
}

Status GorillaValueDecode(const EncodedColumn& col, uint64_t* out) {
  const uint8_t* data = col.bytes.data();
  size_t size = col.bytes.size();
  if (size < 12) return Status::Corruption("gorilla-val: header truncated");
  uint32_t n = GetFixed32BE(data);
  if (n != col.count) return Status::Corruption("gorilla-val: count mismatch");
  if (n == 0) return Status::Ok();
  out[0] = GetFixed64BE(data + 4);

  BitReader r(data + 12, size - 12);
  uint64_t prev = out[0];
  int prev_lead = 0;
  int prev_len = 0;
  for (size_t i = 1; i < n; ++i) {
    if (r.ReadBit() == 0) {
      out[i] = prev;
      continue;
    }
    if (r.ReadBit() == 0) {
      uint64_t bits = r.ReadBits(prev_len);
      uint64_t x = bits << (64 - prev_lead - prev_len);
      prev ^= x;
    } else {
      int lead = static_cast<int>(r.ReadBits(5));
      int len = static_cast<int>(r.ReadBits(6));
      if (len == 0) len = 64;
      uint64_t bits = r.ReadBits(len);
      int trail = 64 - lead - len;
      prev ^= bits << trail;
      prev_lead = lead;
      prev_len = len;
    }
    if (r.exhausted()) return Status::Corruption("gorilla-val: truncated");
    out[i] = prev;
  }
  return Status::Ok();
}

Status GorillaValueDecodeDoubles(const EncodedColumn& col, double* out) {
  std::vector<uint64_t> words(col.count);
  ETSQP_RETURN_IF_ERROR(GorillaValueDecode(col, words.data()));
  std::memcpy(out, words.data(), col.count * sizeof(double));
  return Status::Ok();
}

}  // namespace etsqp::enc
