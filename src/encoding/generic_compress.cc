#include "encoding/generic_compress.h"

#include <cstring>

namespace etsqp::enc {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kHashBits = 15;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr size_t kMaxOffset = 65535;

uint32_t HashAt(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void PutLength(std::vector<uint8_t>* out, size_t len) {
  while (len >= 255) {
    out->push_back(255);
    len -= 255;
  }
  out->push_back(static_cast<uint8_t>(len));
}

bool GetLength(const uint8_t* data, size_t size, size_t* pos, size_t* len) {
  size_t total = 0;
  while (true) {
    if (*pos >= size) return false;
    uint8_t b = data[(*pos)++];
    total += b;
    if (b != 255) break;
  }
  *len = total;
  return true;
}

}  // namespace

std::vector<uint8_t> LzCompress(const uint8_t* data, size_t size) {
  std::vector<uint8_t> out;
  out.reserve(size / 2 + 16);
  std::vector<int64_t> table(kHashSize, -1);

  size_t pos = 0;
  size_t literal_start = 0;
  while (pos + kMinMatch <= size) {
    uint32_t h = HashAt(data + pos);
    int64_t cand = table[h];
    table[h] = static_cast<int64_t>(pos);
    if (cand >= 0 && pos - static_cast<size_t>(cand) <= kMaxOffset &&
        std::memcmp(data + cand, data + pos, kMinMatch) == 0) {
      // Extend the match.
      size_t match_len = kMinMatch;
      while (pos + match_len < size &&
             data[cand + match_len] == data[pos + match_len]) {
        ++match_len;
      }
      size_t literal_len = pos - literal_start;
      PutLength(&out, literal_len);
      PutLength(&out, match_len);
      out.insert(out.end(), data + literal_start, data + pos);
      size_t offset = pos - static_cast<size_t>(cand);
      out.push_back(static_cast<uint8_t>(offset >> 8));
      out.push_back(static_cast<uint8_t>(offset & 0xff));
      pos += match_len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  // Trailing literals (match_len 0, offset 0 sentinel).
  size_t literal_len = size - literal_start;
  PutLength(&out, literal_len);
  PutLength(&out, 0);
  out.insert(out.end(), data + literal_start, data + size);
  out.push_back(0);
  out.push_back(0);
  return out;
}

Status LzDecompress(const uint8_t* data, size_t size, uint8_t* out,
                    size_t expected_size) {
  size_t pos = 0;
  size_t opos = 0;
  while (pos < size) {
    size_t literal_len, match_len;
    if (!GetLength(data, size, &pos, &literal_len) ||
        !GetLength(data, size, &pos, &match_len)) {
      return Status::Corruption("lz: token truncated");
    }
    if (pos + literal_len + 2 > size || opos + literal_len > expected_size) {
      return Status::Corruption("lz: literal overrun");
    }
    std::memcpy(out + opos, data + pos, literal_len);
    pos += literal_len;
    opos += literal_len;
    size_t offset = (static_cast<size_t>(data[pos]) << 8) | data[pos + 1];
    pos += 2;
    if (match_len == 0 && offset == 0) {
      break;  // end-of-stream sentinel
    }
    if (offset == 0 || offset > opos || opos + match_len > expected_size) {
      return Status::Corruption("lz: bad match");
    }
    for (size_t i = 0; i < match_len; ++i, ++opos) {
      out[opos] = out[opos - offset];
    }
  }
  if (opos != expected_size) return Status::Corruption("lz: size mismatch");
  return Status::Ok();
}

}  // namespace etsqp::enc
