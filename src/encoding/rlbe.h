#ifndef ETSQP_ENCODING_RLBE_H_
#define ETSQP_ENCODING_RLBE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "encoding/format.h"

namespace etsqp::enc {

/// RLBE (paper Table I): Delta (+-) -> Repeat (run-length) -> Fibonacci
/// packing. The delta sequence is run-length encoded into <delta, run> pairs
/// and each pair is written as Fib(ZigZag(delta)) followed by Fib(run - 1) —
/// a fully variable-width bit stream terminated per codeword by "11"
/// (Figure 7). Decoding therefore has no fixed element boundaries; the
/// parallel decoder splits the stream by bits and resynchronizes on "11"
/// separators (Section III-C).
///
/// Serialized layout: u32 count | i64 first_value | fibonacci bit stream.

class RlbeEncoder {
 public:
  EncodedColumn Encode(const int64_t* values, size_t n) const;
};

class RlbeColumn {
 public:
  static Result<RlbeColumn> Parse(const uint8_t* data, size_t size);

  uint32_t count() const { return count_; }
  int64_t first_value() const { return first_value_; }
  const uint8_t* stream() const { return stream_; }
  size_t stream_bytes() const { return stream_bytes_; }

  /// Reference scalar decode into out[count()].
  Status DecodeAll(int64_t* out) const;

  /// An anchor is a resynchronization point in the variable-width stream:
  /// a codeword boundary with the decoder state (running value, value
  /// index) needed to continue from there. Anchors enable the paper's
  /// Section III-C parallel decoding of variable packing widths: a slice
  /// starts at the nearest anchor and decodes independently.
  struct Anchor {
    size_t bit_pos = 0;     // first bit of the next <delta, run> pair
    uint32_t value_index = 0;  // values decoded before this point
    int64_t value = 0;         // last decoded value
  };

  /// Scans the stream (separator detection + codeword skipping, no value
  /// reconstruction) and records an anchor roughly every `stride` values.
  /// The first anchor is always (bit 0, index 1, first_value).
  Result<std::vector<Anchor>> ScanAnchors(uint32_t stride) const;

  /// Decodes values [anchor.value_index, end_index) starting at `anchor`,
  /// writing them to out[0 .. end_index - anchor.value_index).
  Status DecodeFrom(const Anchor& anchor, uint32_t end_index,
                    int64_t* out) const;

 private:
  uint32_t count_ = 0;
  int64_t first_value_ = 0;
  const uint8_t* stream_ = nullptr;
  size_t stream_bytes_ = 0;
};

}  // namespace etsqp::enc

#endif  // ETSQP_ENCODING_RLBE_H_
