#include "encoding/rle.h"

namespace etsqp::enc {

std::vector<Run> RleEncode(const int64_t* values, size_t n) {
  std::vector<Run> runs;
  for (size_t i = 0; i < n;) {
    size_t j = i + 1;
    while (j < n && values[j] == values[i]) ++j;
    runs.push_back(Run{values[i], static_cast<uint32_t>(j - i)});
    i = j;
  }
  return runs;
}

size_t RleDecode(const std::vector<Run>& runs, int64_t* out) {
  size_t pos = 0;
  for (const Run& r : runs) {
    for (uint32_t k = 0; k < r.length; ++k) out[pos++] = r.value;
  }
  return pos;
}

size_t RleTotalLength(const std::vector<Run>& runs) {
  size_t total = 0;
  for (const Run& r : runs) total += r.length;
  return total;
}

}  // namespace etsqp::enc
