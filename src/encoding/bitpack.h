#ifndef ETSQP_ENCODING_BITPACK_H_
#define ETSQP_ENCODING_BITPACK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitstream.h"

namespace etsqp::enc {

/// Constant-width Big-Endian bit packing — the "Packing" operator of the
/// Delta-Repeat-Packing encoder family (paper Table I). Values are written
/// MSB-first, consecutively, with no per-value alignment; the scalar decoder
/// here is the reference implementation against which the SIMD unpack kernels
/// (src/simd) are property-tested.

/// Appends `n` values of `width` bits each to `writer`. Values must fit in
/// `width` bits (callers subtract the frame-of-reference base first).
void PackBE(const uint64_t* values, size_t n, int width, BitWriter* writer);

/// Scalar unpack of `n` `width`-bit values starting at bit `bit_offset` of
/// `data` (which spans `size` bytes). Returns false when the input is too
/// short.
bool UnpackBE64(const uint8_t* data, size_t size, size_t bit_offset, size_t n,
                int width, uint64_t* out);

/// 32-bit convenience wrapper (width <= 32).
bool UnpackBE32(const uint8_t* data, size_t size, size_t bit_offset, size_t n,
                int width, uint32_t* out);

/// Reads a single value; used by value-at-a-time serial pipelines.
inline uint64_t UnpackOneBE(const uint8_t* data, size_t bit_offset,
                            int width) {
  uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    size_t bit = bit_offset + i;
    v = (v << 1) | ((data[bit >> 3] >> (7 - (bit & 7))) & 1);
  }
  return v;
}

/// Total bytes holding `n` values of `width` bits (rounded up).
inline size_t PackedBytes(size_t n, int width) {
  return (n * static_cast<size_t>(width) + 7) / 8;
}

}  // namespace etsqp::enc

#endif  // ETSQP_ENCODING_BITPACK_H_
