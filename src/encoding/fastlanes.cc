#include "encoding/fastlanes.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/bitstream.h"
#include "encoding/bitpack.h"

namespace etsqp::enc {

namespace {
constexpr uint32_t kBlock = FastLanesEncoder::kBlockValues;
constexpr uint32_t kLanes = FastLanesEncoder::kLanes;
constexpr uint32_t kDeltasPerBlock = kBlock - kLanes;  // 992
}  // namespace

EncodedColumn FastLanesEncoder::Encode(const int64_t* values,
                                       size_t n) const {
  EncodedColumn col;
  col.encoding = ColumnEncoding::kFastLanes;
  col.count = static_cast<uint32_t>(n);
  std::vector<uint8_t>& out = col.bytes;

  uint32_t num_blocks = n == 0 ? 0 : static_cast<uint32_t>(CeilDiv(n, kBlock));
  PutFixed32BE(&out, static_cast<uint32_t>(n));
  PutFixed32BE(&out, num_blocks);

  std::vector<int64_t> padded(kBlock);
  std::vector<uint64_t> residuals(kDeltasPerBlock);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    size_t s = static_cast<size_t>(b) * kBlock;
    size_t have = std::min<size_t>(kBlock, n - s);
    std::copy(values + s, values + s + have, padded.begin());
    // Pad the tail with the last value: vertical deltas in padded lanes
    // become constant, costing only the block width.
    for (size_t i = have; i < kBlock; ++i) padded[i] = padded[have - 1];

    int64_t min_delta = padded[kLanes] - padded[0];
    int64_t max_delta = min_delta;
    for (uint32_t i = kLanes; i < kBlock; ++i) {
      int64_t d = padded[i] - padded[i - kLanes];
      min_delta = std::min(min_delta, d);
      max_delta = std::max(max_delta, d);
    }
    int width = BitWidth(static_cast<uint64_t>(max_delta - min_delta));

    out.push_back(static_cast<uint8_t>(width));
    PutFixed64BE(&out, static_cast<uint64_t>(min_delta));
    for (uint32_t l = 0; l < kLanes; ++l) {
      PutFixed64BE(&out, static_cast<uint64_t>(padded[l]));
    }
    for (uint32_t i = kLanes; i < kBlock; ++i) {
      residuals[i - kLanes] =
          static_cast<uint64_t>(padded[i] - padded[i - kLanes] - min_delta);
    }
    BitWriter writer;
    PackBE(residuals.data(), residuals.size(), width, &writer);
    std::vector<uint8_t> packed = writer.TakeBuffer();
    out.insert(out.end(), packed.begin(), packed.end());
  }
  return col;
}

Result<FastLanesColumn> FastLanesColumn::Parse(const uint8_t* data,
                                               size_t size) {
  if (size < 8) return Status::Corruption("fastlanes: header truncated");
  FastLanesColumn col;
  col.count_ = GetFixed32BE(data);
  uint32_t num_blocks = GetFixed32BE(data + 4);
  // Blocks hold exactly 1024 logical slots; the count must land inside the
  // last block (corrupted headers otherwise underflow num_values below).
  uint64_t capacity = static_cast<uint64_t>(num_blocks) * kBlock;
  uint64_t floor = num_blocks == 0 ? 0
                                   : (static_cast<uint64_t>(num_blocks) - 1) *
                                             kBlock +
                                         1;
  if (col.count_ > capacity || col.count_ < floor) {
    return Status::Corruption("fastlanes: count/block mismatch");
  }
  size_t pos = 8;
  col.blocks_.reserve(num_blocks);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    if (pos + 9 + kLanes * 8 > size) {
      return Status::Corruption("fastlanes: block truncated");
    }
    FastLanesBlock blk;
    blk.width = data[pos];
    blk.min_delta = static_cast<int64_t>(GetFixed64BE(data + pos + 1));
    pos += 9;
    blk.base_row = data + pos;
    pos += kLanes * 8;
    blk.packed = data + pos;
    blk.packed_bytes = PackedBytes(kDeltasPerBlock, blk.width);
    if (pos + blk.packed_bytes > size) {
      return Status::Corruption("fastlanes: packed data truncated");
    }
    pos += blk.packed_bytes;
    blk.start_index = b * kBlock;
    blk.num_values = std::min(kBlock, col.count_ - blk.start_index);
    col.blocks_.push_back(blk);
  }
  return col;
}

void FastLanesColumn::DecodeBlock(const FastLanesBlock& block, int64_t* out) {
  for (uint32_t l = 0; l < kLanes; ++l) {
    out[l] = static_cast<int64_t>(GetFixed64BE(block.base_row + l * 8));
  }
  size_t bit = 0;
  for (uint32_t i = kLanes; i < kBlock; ++i) {
    uint64_t r = UnpackOneBE(block.packed, bit, block.width);
    bit += block.width;
    out[i] = out[i - kLanes] + block.min_delta + static_cast<int64_t>(r);
  }
}

Status FastLanesColumn::DecodeAll(int64_t* out) const {
  std::vector<int64_t> tmp(kBlock);
  for (const FastLanesBlock& blk : blocks_) {
    DecodeBlock(blk, tmp.data());
    std::copy(tmp.begin(), tmp.begin() + blk.num_values,
              out + blk.start_index);
  }
  return Status::Ok();
}

}  // namespace etsqp::enc
