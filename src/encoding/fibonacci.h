#ifndef ETSQP_ENCODING_FIBONACCI_H_
#define ETSQP_ENCODING_FIBONACCI_H_

#include <cstdint>
#include <vector>

#include "common/bitstream.h"
#include "common/status.h"

namespace etsqp::enc {

/// Fibonacci coding: the variable-width Packing operator used by RLBE
/// (paper Table I, Figure 7). A positive integer is written as the sum of
/// non-consecutive Fibonacci numbers, emitted lowest-order first, terminated
/// by an extra 1 bit — so every codeword ends in the unique pattern "11",
/// which the SIMD separator kernel detects with (V >> 1) & V.
///
/// We code x >= 0 as Fib(x + 1), so zero is representable.

/// Appends the Fibonacci codeword of `x` (>= 0) to `writer`.
void FibonacciEncode(uint64_t x, BitWriter* writer);

/// Reads one codeword from `reader`. Returns false on malformed/truncated
/// input.
bool FibonacciDecode(BitReader* reader, uint64_t* out);

/// Decodes up to `max_values` codewords from a bit range. Returns the number
/// decoded; `*bits_consumed` reports the exact bit length consumed.
size_t FibonacciDecodeRange(const uint8_t* data, size_t size_bytes,
                            size_t bit_offset, size_t bit_end,
                            size_t max_values, uint64_t* out,
                            size_t* bits_consumed);

/// The Fibonacci numbers used by the coder (F[0]=1, F[1]=2, 1,2,3,5,...).
const std::vector<uint64_t>& FibonacciTable();

}  // namespace etsqp::enc

#endif  // ETSQP_ENCODING_FIBONACCI_H_
