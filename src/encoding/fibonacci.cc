#include "encoding/fibonacci.h"

namespace etsqp::enc {

const std::vector<uint64_t>& FibonacciTable() {
  static const std::vector<uint64_t>* table = [] {
    auto* t = new std::vector<uint64_t>{1, 2};
    while (true) {
      uint64_t n = t->end()[-1] + t->end()[-2];
      if (n < t->back()) break;  // overflow
      t->push_back(n);
      if (t->size() >= 92) break;
    }
    return t;
  }();
  return *table;
}

void FibonacciEncode(uint64_t x, BitWriter* writer) {
  uint64_t v = x + 1;  // Fibonacci codes cover positive integers only.
  const std::vector<uint64_t>& fib = FibonacciTable();
  // Greedy: find the largest Fibonacci number <= v, mark bits high to low.
  int hi = 0;
  for (int i = static_cast<int>(fib.size()) - 1; i >= 0; --i) {
    if (fib[i] <= v) {
      hi = i;
      break;
    }
  }
  // Collect which indices participate.
  uint64_t rem = v;
  std::vector<uint8_t> bits(hi + 1, 0);
  for (int i = hi; i >= 0; --i) {
    if (fib[i] <= rem) {
      bits[i] = 1;
      rem -= fib[i];
    }
  }
  // Emit lowest-order first, then the terminating 1 (forming "11").
  for (int i = 0; i <= hi; ++i) writer->WriteBit(bits[i]);
  writer->WriteBit(1);
}

bool FibonacciDecode(BitReader* reader, uint64_t* out) {
  const std::vector<uint64_t>& fib = FibonacciTable();
  uint64_t v = 0;
  uint32_t prev = 0;
  for (size_t i = 0;; ++i) {
    if (reader->remaining_bits() == 0) return false;
    uint32_t b = reader->ReadBit();
    if (b && prev) {
      // Terminator: the previous 1 was the last data bit.
      *out = v - 1;
      return v >= 1;
    }
    if (i >= fib.size()) return false;
    if (b) v += fib[i];
    prev = b;
  }
}

size_t FibonacciDecodeRange(const uint8_t* data, size_t size_bytes,
                            size_t bit_offset, size_t bit_end,
                            size_t max_values, uint64_t* out,
                            size_t* bits_consumed) {
  BitReader reader(data, size_bytes);
  reader.SeekBits(bit_offset);
  size_t n = 0;
  size_t consumed_end = bit_offset;
  while (n < max_values && reader.bit_pos() < bit_end) {
    uint64_t v;
    size_t start = reader.bit_pos();
    if (!FibonacciDecode(&reader, &v) || reader.bit_pos() > bit_end) {
      reader.SeekBits(start);
      break;
    }
    out[n++] = v;
    consumed_end = reader.bit_pos();
  }
  if (bits_consumed != nullptr) *bits_consumed = consumed_end - bit_offset;
  return n;
}

}  // namespace etsqp::enc
