#ifndef ETSQP_ENCODING_SPRINTZ_H_
#define ETSQP_ENCODING_SPRINTZ_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "encoding/format.h"

namespace etsqp::enc {

/// Sprintz (paper Table I): Delta (+-) -> ZigZag -> BitPack in small blocks.
/// Each block of up to 8 deltas carries a one-byte width header; zigzagged
/// residuals are bit-packed with that width. Small blocks track fast width
/// changes, which is Sprintz's selling point for spiky IoT data.
///
/// Serialized layout: u32 count | i64 first_value | repeated blocks of
///   { u8 width | packed zigzag deltas (byte-aligned) }.

class SprintzEncoder {
 public:
  static constexpr size_t kBlockValues = 8;

  EncodedColumn Encode(const int64_t* values, size_t n) const;
};

class SprintzColumn {
 public:
  static Result<SprintzColumn> Parse(const uint8_t* data, size_t size);

  uint32_t count() const { return count_; }
  int64_t first_value() const { return first_value_; }

  /// Reference scalar decode into out[count()].
  Status DecodeAll(int64_t* out) const;

 private:
  uint32_t count_ = 0;
  int64_t first_value_ = 0;
  const uint8_t* blocks_ = nullptr;
  size_t blocks_bytes_ = 0;
};

}  // namespace etsqp::enc

#endif  // ETSQP_ENCODING_SPRINTZ_H_
