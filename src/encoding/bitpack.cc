#include "encoding/bitpack.h"

#include "common/bit_util.h"

namespace etsqp::enc {

void PackBE(const uint64_t* values, size_t n, int width, BitWriter* writer) {
  for (size_t i = 0; i < n; ++i) {
    writer->WriteBits(values[i], width);
  }
}

bool UnpackBE64(const uint8_t* data, size_t size, size_t bit_offset, size_t n,
                int width, uint64_t* out) {
  if (width == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return true;
  }
  if (bit_offset + n * static_cast<size_t>(width) > size * 8) return false;
  size_t pos = bit_offset;
  for (size_t i = 0; i < n; ++i) {
    // Read the (up to) 9 bytes covering [pos, pos + width) into a 64-bit
    // big-endian window, then shift the value into place. Width <= 57 fits a
    // single 64-bit window; wider values take two reads.
    uint64_t v;
    if (width <= 57) {
      size_t byte = pos >> 3;
      int in_byte = static_cast<int>(pos & 7);
      uint64_t window = 0;
      size_t avail = size - byte;
      size_t need = (static_cast<size_t>(in_byte) + width + 7) / 8;
      for (size_t k = 0; k < 8; ++k) {
        window = (window << 8) | (k < avail && k < need ? data[byte + k] : 0);
      }
      int shift = 64 - in_byte - width;
      v = (window >> shift) & MaskLow64(width);
    } else {
      int hi_bits = width - 32;
      uint64_t hi = UnpackOneBE(data, pos, hi_bits);
      uint64_t lo = UnpackOneBE(data, pos + hi_bits, 32);
      v = (hi << 32) | lo;
    }
    out[i] = v;
    pos += width;
  }
  return true;
}

bool UnpackBE32(const uint8_t* data, size_t size, size_t bit_offset, size_t n,
                int width, uint32_t* out) {
  if (width == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return true;
  }
  if (bit_offset + n * static_cast<size_t>(width) > size * 8) return false;
  size_t pos = bit_offset;
  for (size_t i = 0; i < n; ++i) {
    size_t byte = pos >> 3;
    int in_byte = static_cast<int>(pos & 7);
    uint64_t window = 0;
    size_t avail = size - byte;
    for (size_t k = 0; k < 8; ++k) {
      window = (window << 8) | (k < avail ? data[byte + k] : 0);
    }
    int shift = 64 - in_byte - width;
    out[i] = static_cast<uint32_t>((window >> shift) & MaskLow64(width));
    pos += width;
  }
  return true;
}

}  // namespace etsqp::enc
