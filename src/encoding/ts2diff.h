#ifndef ETSQP_ENCODING_TS2DIFF_H_
#define ETSQP_ENCODING_TS2DIFF_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "encoding/format.h"

namespace etsqp::enc {

/// TS2DIFF (IoTDB TS_2DIFF): the widely applied IoT encoder of paper
/// Figure 1(b). Values are Delta-encoded against their predecessor; each
/// block subtracts the block-minimum delta (`min_delta`, the paper's `base`)
/// and bit-packs the residuals Big-Endian with a single per-block width.
///
/// Serialized layout (all fixed fields Big-Endian):
///   u32 count | u32 block_size | u32 num_blocks
///   per block:
///     u32 num_deltas | u8 width | i64 min_delta | i64 first_value
///     i64 min_value | i64 max_value   (exact block statistics)
///     packed residuals (PackedBytes(num_deltas, width), byte-aligned)
///
/// Each block stores its own `first_value`, so blocks decode independently —
/// this is what lets the scheduler split a page into slices (Section III-C)
/// and lets pruning skip whole blocks (Section V).
///
/// Block b covering values [s, e) stores first_value = v[s] and
/// num_deltas = e-s-1 residuals r_i = (v[s+i] - v[s+i-1]) - min_delta.

class Ts2DiffEncoder {
 public:
  static constexpr uint32_t kDefaultBlockSize = 1024;

  explicit Ts2DiffEncoder(uint32_t block_size = kDefaultBlockSize)
      : block_size_(block_size < 2 ? 2 : block_size) {}

  /// Encodes `n` values (n >= 1) into a self-contained column blob.
  EncodedColumn Encode(const int64_t* values, size_t n) const;

 private:
  uint32_t block_size_;
};

/// Parsed view of one TS2DIFF block; points into the column's byte buffer.
struct Ts2DiffBlock {
  uint32_t num_deltas = 0;
  uint8_t width = 0;
  int64_t min_delta = 0;   // the paper's `base`
  int64_t first_value = 0;
  int64_t min_value = 0;   // exact block statistics (page-header style)
  int64_t max_value = 0;
  const uint8_t* packed = nullptr;
  size_t packed_bytes = 0;
  uint32_t start_index = 0;  // index of first_value within the column

  uint32_t num_values() const { return num_deltas + 1; }

  /// Conservative delta bounds used by the pruning rules (Propositions 4-5):
  /// every decoded delta lies in [min_delta, min_delta + 2^width - 1].
  int64_t delta_lower_bound() const { return min_delta; }
  int64_t delta_upper_bound() const;

  /// True when all deltas equal min_delta (width == 0): constant interval,
  /// enabling direct position arithmetic for time filters (Proposition 4).
  bool constant_interval() const { return width == 0; }
};

/// Parsed (zero-copy) TS2DIFF column. The backing bytes must outlive it.
class Ts2DiffColumn {
 public:
  static Result<Ts2DiffColumn> Parse(const uint8_t* data, size_t size);

  uint32_t count() const { return count_; }
  uint32_t block_size() const { return block_size_; }
  const std::vector<Ts2DiffBlock>& blocks() const { return blocks_; }

  /// Reference scalar decode of the whole column into `out[count()]`.
  Status DecodeAll(int64_t* out) const;

  /// Scalar decode of a single block into `out[block.num_values()]`.
  static void DecodeBlock(const Ts2DiffBlock& block, int64_t* out);

 private:
  uint32_t count_ = 0;
  uint32_t block_size_ = 0;
  std::vector<Ts2DiffBlock> blocks_;
};

}  // namespace etsqp::enc

#endif  // ETSQP_ENCODING_TS2DIFF_H_
