// Validates Proposition 1 and Theorem 2: sweeps the transposed-layout vector
// count n_v at several packing widths, comparing measured decode throughput
// against the cost model's T_AVG, and prints the model's acceleration
// estimates (Theorem 2).

#include <random>

#include "bench/bench_util.h"
#include "common/aligned_buffer.h"
#include "common/bitstream.h"
#include "encoding/bitpack.h"
#include "exec/cost_model.h"
#include "simd/transposed_unpack.h"

int main() {
  using namespace etsqp;
  using bench::EndRow;
  using bench::PrintCell;
  using bench::PrintHeader;

  size_t n = static_cast<size_t>(4'000'000 * bench::BenchScale());
  std::mt19937_64 rng(13);
  std::vector<int32_t> out(n);
  exec::CostConstants costs;

  for (int width : {5, 10, 17, 25}) {
    std::vector<uint64_t> residuals(n);
    for (auto& r : residuals) r = rng() & ((1ull << width) - 1) & 0xFFF;
    BitWriter w;
    enc::PackBE(residuals.data(), n, width, &w);
    auto bytes = w.TakeBuffer();
    AlignedBuffer buf;
    buf.Assign(bytes.data(), bytes.size());

    PrintHeader("Proposition 1 sweep, width=" + std::to_string(width) +
                    " (default n_v=" +
                    std::to_string(exec::OptimalNv(width)) + ", formula=" +
                    std::to_string(exec::OptimalNvReal(width, 32, costs)) +
                    ")",
                {"n_v", "Mvals/s", "model_T_AVG"});
    for (int n_v : {1, 2, 3, 4, 6, 8, 12, 16}) {
      // The order-insensitive form: what the pipeline operators consume
      // (register sharing); the natural-order variant adds a scatter pass
      // orthogonal to the Proposition 1 cost structure.
      double secs = bench::TimeBest(
          [&] {
            simd::DeltaDecodeOffsetsAvx2Unordered(buf.data(), buf.size(), n,
                                                  width, 1, n_v, 0,
                                                  out.data());
          },
          0.05, 7);
      PrintCell(static_cast<double>(n_v));
      PrintCell(static_cast<double>(n) / secs / 1e6);
      PrintCell(exec::AverageDecodeTime(width, 32, n_v, costs));
      EndRow();
    }
  }

  PrintHeader("Theorem 2: estimated acceleration T_serial / T_parallel",
              {"Width", "1 thread", "4 threads", "16 threads"});
  for (int width : {5, 10, 17, 25, 32}) {
    PrintCell(static_cast<double>(width));
    for (int p : {1, 4, 16}) {
      PrintCell(exec::EstimatedSpeedup(width, 32, p, costs));
      if (p == 16) EndRow();
    }
  }

  std::printf(
      "\nExpected shape (Prop. 1 / Thm. 2): measured throughput peaks near"
      "\nthe model's optimal n_v (interior optimum: too few vectors pay the"
      "\nprefix permute per few values, too many thrash registers); the"
      "\npaper's example width 10 -> n_v 6; ~15x at 16 threads for 10-bit"
      "\nTS2DIFF (Theorem 2 remark).\n");
  return 0;
}
