// Streaming-ingest benchmark: append throughput of the synchronized
// SeriesStore under the WAL fsync policies (none / group-commit / per-record)
// and with background page sealing, plus the query-latency cost of the
// scalar tail versus fully sealed SIMD pages.
//
//   ETSQP_BENCH_SCALE   scales the point counts (default 1.0)
//   ETSQP_BENCH_JSON    appends one JSON line per case
//
// Append throughput counts acknowledged points per wall second, batched
// inserts of 512 points (an MQTT-gateway-style packet). The tail-query rows
// compare the same aggregation with the data entirely in sealed pages
// against the data entirely in the unsealed tail.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "db/iotdb_lite.h"
#include "storage/wal.h"

namespace etsqp {
namespace {

constexpr size_t kBatch = 512;

struct AppendCase {
  const char* name;
  bool use_wal = false;
  storage::Wal::FsyncPolicy fsync = storage::Wal::FsyncPolicy::kNever;
  bool background_seal = false;
  double scale = 1.0;  // per-case point-count scale (fsync-heavy runs less)
};

double RunAppend(const AppendCase& c, size_t points) {
  std::string wal_path = "/tmp/etsqp_bench_ingest.wal";
  std::remove(wal_path.c_str());
  db::IotDbLite dbi;
  storage::SeriesStore::SeriesOptions opt;
  opt.page_size = 4096;
  if (!dbi.CreateTimeseries("s", opt).ok()) std::abort();
  db::IotDbLite::IngestConfig cfg;
  if (c.use_wal) {
    cfg.wal_path = wal_path;
    cfg.fsync = c.fsync;
  }
  cfg.background_seal = c.background_seal;
  if (!dbi.EnableIngest(cfg).ok()) std::abort();

  std::vector<int64_t> times(kBatch), values(kBatch);
  bench::Timer timer;
  size_t sent = 0;
  int64_t t = 0;
  while (sent < points) {
    size_t n = std::min(kBatch, points - sent);
    for (size_t i = 0; i < n; ++i) {
      times[i] = t;
      values[i] = (t * 31) & 1023;
      ++t;
    }
    if (!dbi.InsertBatch("s", times.data(), values.data(), n).ok()) {
      std::abort();
    }
    sent += n;
  }
  if (!dbi.Flush().ok()) std::abort();
  double seconds = timer.Seconds();
  std::remove(wal_path.c_str());
  return seconds;
}

void AppendThroughput(size_t base_points) {
  const AppendCase cases[] = {
      {"no-wal", false, storage::Wal::FsyncPolicy::kNever, false, 1.0},
      {"no-wal+bg-seal", false, storage::Wal::FsyncPolicy::kNever, true, 1.0},
      {"wal-nosync", true, storage::Wal::FsyncPolicy::kNever, false, 1.0},
      {"wal-batch", true, storage::Wal::FsyncPolicy::kBatch, false, 1.0},
      {"wal-fsync", true, storage::Wal::FsyncPolicy::kAlways, false, 0.02},
  };
  bench::PrintHeader("Append throughput (points/s, batches of 512)",
                     {"case", "points", "seconds", "points/s"});
  for (const AppendCase& c : cases) {
    size_t points = static_cast<size_t>(
        static_cast<double>(base_points) * c.scale);
    points = std::max(points, kBatch);
    double seconds = RunAppend(c, points);
    bench::PrintCell(c.name);
    bench::PrintCell(static_cast<double>(points));
    bench::PrintCell(seconds);
    bench::PrintCell(static_cast<double>(points) / seconds);
    bench::EndRow();
    exec::ExecStats stats;
    stats.tuples_in_pages = points;  // => tuples_per_sec in the JSON line
    bench::ExportJson("bench_ingest", std::string("append/") + c.name,
                      seconds, stats);
  }
}

void TailQueryLatency(size_t points) {
  bench::PrintHeader("Aggregation latency: sealed pages vs unsealed tail",
                     {"case", "points", "ms/query", "Mtuples/s"});
  for (bool sealed : {true, false}) {
    db::IotDbLite dbi;
    storage::SeriesStore::SeriesOptions opt;
    // Sealed: normal page size => SIMD pipeline over encoded pages.
    // Unsealed: page_size past the point count => everything stays tail.
    opt.page_size =
        sealed ? 4096 : static_cast<uint32_t>(points + 1);
    if (!dbi.CreateTimeseries("s", opt).ok()) std::abort();
    std::vector<int64_t> times(points), values(points);
    for (size_t i = 0; i < points; ++i) {
      times[i] = static_cast<int64_t>(i);
      values[i] = static_cast<int64_t>((i * 31) & 1023);
    }
    if (!dbi.InsertBatch("s", times.data(), values.data(), points).ok()) {
      std::abort();
    }
    if (sealed && !dbi.Flush().ok()) std::abort();

    exec::ExecStats stats;
    double seconds = bench::TimeBest([&] {
      auto result = dbi.Query("SELECT SUM(s) FROM s;");
      if (!result.ok()) std::abort();
      stats = result.value().stats;
    });
    const char* name = sealed ? "sealed-pages" : "tail-only";
    bench::PrintCell(name);
    bench::PrintCell(static_cast<double>(points));
    bench::PrintCell(seconds * 1e3);
    bench::PrintCell(static_cast<double>(points) / seconds / 1e6);
    bench::EndRow();
    bench::ExportJson("bench_ingest", std::string("query/") + name, seconds,
                      stats);
  }
}

}  // namespace
}  // namespace etsqp

int main() {
  double scale = etsqp::bench::BenchScale();
  size_t append_points =
      static_cast<size_t>(2'000'000 * scale);
  size_t query_points = static_cast<size_t>(1'000'000 * scale);
  append_points = std::max<size_t>(append_points, 4096);
  query_points = std::max<size_t>(query_points, 4096);
  etsqp::AppendThroughput(append_points);
  etsqp::TailQueryLatency(query_points);
  return 0;
}
