// Pruning-index planning benchmark: fleet-scale series counts. A shard
// with 10^5 series (ETSQP_BENCH_SCALE scales it) where every filter query
// used to walk every series' page headers before scheduling a single job.
// Measured per filter shape, over the whole fleet:
//
//   linear       index off — snapshot every series and run the linear
//                per-page-header walk (the pre-index planner)
//   leaf-scan    index on, no fleet probe — snapshot every series; the
//                level-1 envelope skips dead series, the level-2 SIMD leaf
//                scan replaces the header walk for live ones
//   fleet-probe  index on — one SIMD sweep over the level-1 envelopes
//                (SeriesStore::CountMatchingSeries) picks the surviving
//                series; only those are snapshotted and planned
//
// Leaf-scan and linear must schedule identical job sets (the
// differential-tested index-on/off contract). The fleet probe may schedule
// fewer jobs when a value filter is active: page-level planning prunes on
// time only (value pruning runs at block level inside the drain), while the
// series envelope can rule out whole series by value up front. The
// acceptance bar is fleet-probe >= 5x faster than linear planning on the
// selective shapes at 10^5 series.
//
//   ETSQP_BENCH_SCALE   scales the series count (default 1.0 = 100k)
//   ETSQP_BENCH_JSON    appends one JSON line per case

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exec/pipe_builder.h"
#include "exec/pipeline.h"
#include "storage/pruning_index.h"
#include "storage/series_store.h"

namespace etsqp {
namespace {

using bench::PrintCell;
using bench::PrintHeader;
using bench::TimeBest;
using exec::LogicalPlan;
using exec::PipelineOptions;
using storage::PruneProbe;
using storage::SeriesStore;

constexpr int64_t kPointsPerSeries = 32;
constexpr int64_t kTimeStride = 2;  // series k owns [k*64, k*64+62]
constexpr int64_t kSpanPerSeries = kPointsPerSeries * kTimeStride;

struct Fleet {
  SeriesStore store;
  std::vector<std::string> names;
};

/// 10^5 staggered series, 2 sealed pages each: series k holds 32 points in
/// [k*64, k*64+62] with values clustered at k % 1000 — so a narrow time
/// window or value band is selective across the fleet, the planner's worst
/// pre-index case (every header touched, almost everything discarded).
void BuildFleet(Fleet* fleet, size_t n_series) {
  fleet->names.reserve(n_series);
  std::vector<int64_t> times(kPointsPerSeries), values(kPointsPerSeries);
  for (size_t k = 0; k < n_series; ++k) {
    fleet->names.push_back("dev" + std::to_string(k));
    SeriesStore::SeriesOptions opt;
    opt.page_size = static_cast<uint32_t>(kPointsPerSeries / 2);
    if (!fleet->store.CreateSeries(fleet->names.back(), opt).ok()) {
      std::abort();
    }
    const int64_t base = static_cast<int64_t>(k) * kSpanPerSeries;
    for (int64_t i = 0; i < kPointsPerSeries; ++i) {
      times[i] = base + i * kTimeStride;
      values[i] = static_cast<int64_t>(k % 1000) * 10 + (i % 7);
    }
    if (!fleet->store
             .AppendBatch(fleet->names.back(), times.data(), values.data(),
                          kPointsPerSeries)
             .ok()) {
      std::abort();
    }
  }
  if (!fleet->store.Flush().ok()) std::abort();
}

struct PlanOutcome {
  size_t jobs = 0;
  size_t series_planned = 0;
  exec::ExecStats stats;
};

/// Plans `plan` against every series in `names` (plan.series is rewritten
/// per series) and accumulates the scheduled jobs and planning counters.
PlanOutcome PlanSeries(const SeriesStore& store,
                       const std::vector<std::string>& names,
                       LogicalPlan* plan, const PipelineOptions& options) {
  PlanOutcome out;
  std::vector<storage::SeriesSnapshot> inputs(1);
  for (const std::string& name : names) {
    plan->series = name;
    auto snap = store.GetSnapshot(name);
    if (!snap.ok()) std::abort();
    inputs[0] = std::move(snap).value();
    auto spec = BuildPipeline(*plan, inputs, options);
    if (!spec.ok()) std::abort();
    out.jobs += spec.value().jobs.size();
    out.stats.Merge(spec.value().plan_stats);
    ++out.series_planned;
  }
  return out;
}

/// The fleet-probe path: one SIMD sweep over the series envelopes, then
/// plan only the survivors.
PlanOutcome PlanFleetProbe(const SeriesStore& store, LogicalPlan* plan,
                           const PipelineOptions& options) {
  PruneProbe probe;
  probe.t_lo = plan->time_filter.lo;
  probe.t_hi = plan->time_filter.hi;
  probe.value_active = plan->value_filter.active;
  probe.v_lo = plan->value_filter.lo;
  probe.v_hi = plan->value_filter.hi;
  std::vector<std::string> matched;
  storage::PruneProbeStats ps = store.CountMatchingSeries(probe, &matched);
  PlanOutcome out = PlanSeries(store, matched, plan, options);
  out.stats.index_probe_nanos += ps.probe_nanos;
  out.stats.series_pruned += ps.series_total - ps.series_matched;
  return out;
}

void ExportCase(const char* case_name, size_t n_series, double linear_s,
                double leaf_s, double probe_s, size_t jobs,
                size_t jobs_fleet) {
  const char* path = std::getenv("ETSQP_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"bench\": \"pruning_index\", \"case\": \"%s\", "
               "\"series\": %zu, \"linear_seconds\": %.9f, "
               "\"leaf_scan_seconds\": %.9f, \"fleet_probe_seconds\": %.9f, "
               "\"speedup_leaf\": %.3f, \"speedup_fleet\": %.3f, "
               "\"jobs_scheduled\": %zu, \"jobs_fleet_probe\": %zu}\n",
               case_name, n_series, linear_s, leaf_s, probe_s,
               leaf_s > 0 ? linear_s / leaf_s : 0.0,
               probe_s > 0 ? linear_s / probe_s : 0.0, jobs, jobs_fleet);
  std::fclose(f);
}

}  // namespace
}  // namespace etsqp

int main() {
  using namespace etsqp;
  const size_t n_series = static_cast<size_t>(100'000 * bench::BenchScale());
  Fleet fleet;
  BuildFleet(&fleet, n_series);
  const int64_t fleet_span = static_cast<int64_t>(n_series) * kSpanPerSeries;

  std::printf("pruning-index planning: %zu series x %lld points "
              "(2 sealed pages each)\n",
              n_series, static_cast<long long>(kPointsPerSeries));
  PrintHeader("planning latency, index off vs on (best-of timing)",
              {"case", "linear-ms", "leaf-ms", "probe-ms", "fleet-x"});

  struct Shape {
    const char* name;
    bool time_selective;    // ~1% of the fleet's time span
    bool value_selective;   // ~1% of the value clusters
  };
  const Shape shapes[] = {
      {"time_1pct", true, false},
      {"time_value_1pct", true, true},
      {"value_1pct", false, true},
      {"unselective", false, false},
  };

  bool ok = true;
  double selective_worst = 1e100;
  for (const Shape& shape : shapes) {
    LogicalPlan plan = LogicalPlan::Aggregate("", exec::AggFunc::kSum);
    if (shape.time_selective) {
      plan.time_filter.lo = fleet_span / 2;
      plan.time_filter.hi = fleet_span / 2 + fleet_span / 100;
    }
    if (shape.value_selective) {
      plan.value_filter.active = true;
      plan.value_filter.lo = 4200;  // clusters k%1000 in [420, 429]
      plan.value_filter.hi = 4299;
    }

    PipelineOptions off = PipelineOptions::Etsqp(1).WithPruneIndex(false);
    PipelineOptions on = PipelineOptions::Etsqp(1).WithPruneIndex(true);
    PlanOutcome r_linear, r_leaf, r_probe;
    double linear_s = TimeBest(
        [&] { r_linear = PlanSeries(fleet.store, fleet.names, &plan, off); });
    double leaf_s = TimeBest(
        [&] { r_leaf = PlanSeries(fleet.store, fleet.names, &plan, on); });
    double probe_s =
        TimeBest([&] { r_probe = PlanFleetProbe(fleet.store, &plan, on); });

    // The contract the differential harness proves in miniature: index
    // on/off schedule exactly the same jobs over the same snapshots. The
    // fleet probe matches too on time-only shapes; with a value filter it
    // may schedule strictly fewer (series-envelope value pruning has no
    // page-level counterpart — value pruning runs at block level in the
    // drain), never more.
    const bool probe_ok = shape.value_selective
                              ? r_probe.jobs <= r_linear.jobs
                              : r_probe.jobs == r_linear.jobs;
    if (r_leaf.jobs != r_linear.jobs || !probe_ok) {
      std::fprintf(stderr,
                   "FAIL %s: scheduled jobs diverge (linear=%zu leaf=%zu "
                   "probe=%zu)\n",
                   shape.name, r_linear.jobs, r_leaf.jobs, r_probe.jobs);
      ok = false;
    }

    PrintCell(shape.name);
    PrintCell(linear_s * 1e3);
    PrintCell(leaf_s * 1e3);
    PrintCell(probe_s * 1e3);
    PrintCell(probe_s > 0 ? linear_s / probe_s : 0.0);
    bench::EndRow();
    ExportCase(shape.name, n_series, linear_s, leaf_s, probe_s,
               r_linear.jobs, r_probe.jobs);
    if ((shape.time_selective || shape.value_selective) && probe_s > 0) {
      selective_worst = std::min(selective_worst, linear_s / probe_s);
    }
  }

  std::printf("\nworst selective fleet-probe speedup: %.2fx "
              "(acceptance: >= 5x at 100k series)\n",
              selective_worst);
  if (!ok) return 1;
  return 0;
}
