// Reproduces paper Figure 11: query throughput over varied thread counts for
// ETSQP, SBoost, and FastLanes (Q1 on the Time and Sine datasets).
//
// Hardware substitution (DESIGN.md section 5): this container exposes one
// CPU core, so wall-clock scaling cannot be observed directly. We measure
// real single-core per-page costs for each engine, then replay them on p
// simulated cores under each system's *actual scheduling policy* with the
// deterministic scheduler simulator:
//   ETSQP      shared ready queue over pages (+ block-aligned slices)
//   SBoost     static partition with dependent sub-page slices (Figure 8)
//   FastLanes  shared queue over FLMM1024 pages (bigger I/O per tuple)
// Throughput = tuples / simulated makespan.

#include "baselines/fastlanes_exec.h"
#include "bench/bench_util.h"
#include "exec/engine.h"
#include "exec/pipeline.h"
#include "sim/sched_sim.h"
#include "workload/generators.h"

namespace etsqp {
namespace {

/// Measures the real single-core cost of aggregating each page.
std::vector<double> MeasurePageCosts(const storage::SeriesStore& store,
                                     const std::string& series,
                                     const exec::PipelineOptions& options) {
  auto s = store.GetSeries(series);
  if (!s.ok()) std::abort();
  std::vector<double> costs;
  for (const auto& page_ptr : s.value()->pages) {
    const storage::Page& page = *page_ptr;
    exec::PipelineOptions opt = options;
    opt.threads = 1;
    double secs = bench::TimeBest(
        [&] {
          exec::AggAccum accum;
          exec::QueryStats stats;
          auto st = exec::AggregateSlice(page, 0, page.header.count,
                                         exec::TimeRange{}, exec::ValueRange{},
                                         exec::AggFunc::kSum, opt, &accum,
                                         &stats);
          if (!st.ok()) std::abort();
        },
        0.01, 5);
    costs.push_back(secs);
  }
  return costs;
}

}  // namespace
}  // namespace etsqp

int main() {
  using namespace etsqp;
  using bench::EndRow;
  using bench::PrintCell;
  using bench::PrintHeader;

  double scale = 0.1 * bench::BenchScale();
  for (const char* which : {"Time", "Sine"}) {
    workload::Dataset ds = std::string(which) == "Time"
                               ? workload::MakeTimestamp(
                                     static_cast<size_t>(4'000'000 * scale))
                               : workload::MakeSine(
                                     static_cast<size_t>(4'000'000 * scale));
    storage::SeriesStore ts_store, fl_store;
    auto n1 = workload::LoadDataset(ds, {}, &ts_store);
    auto n2 = baselines::LoadDatasetFastLanes(ds, &fl_store);
    if (!n1.ok() || !n2.ok()) return 1;
    std::string series = n1.value()[0];
    size_t tuples = ds.rows();

    std::vector<double> etsqp_costs =
        MeasurePageCosts(ts_store, series, exec::PipelineOptions::Etsqp(1));
    std::vector<double> sboost_costs =
        MeasurePageCosts(ts_store, series, exec::PipelineOptions::Sboost(1));
    std::vector<double> fl_costs =
        MeasurePageCosts(fl_store, series, exec::PipelineOptions::FastLanes(1));

    PrintHeader(std::string("Figure 11 (") + which +
                    "): throughput (tuples/s) vs thread count",
                {"Threads", "ETSQP", "SBoost", "FastLanes"});
    for (int p : {1, 2, 4, 8, 16}) {
      // ETSQP: shared queue; slices pages only when pages < cores.
      std::vector<sim::SimJob> etsqp_jobs;
      if (etsqp_costs.size() >= static_cast<size_t>(p)) {
        etsqp_jobs = sim::JobsFromCosts(etsqp_costs);
      } else {
        int per_page = (p + static_cast<int>(etsqp_costs.size()) - 1) /
                       static_cast<int>(etsqp_costs.size());
        // Block-aligned slices: independent (per-block first values), tiny
        // split overhead.
        etsqp_jobs = sim::SlicedJobs(etsqp_costs, per_page, 2e-7, false);
      }
      auto r_etsqp =
          sim::Simulate(etsqp_jobs, p, sim::SchedulePolicy::kSharedQueue);

      // SBoost: always splits pages into p slices with prefix-sum
      // dependencies, statically partitioned (Figure 8's stalls).
      auto sboost_jobs = sim::SlicedJobs(sboost_costs, p, 2e-7, true);
      auto r_sboost =
          sim::Simulate(sboost_jobs, p, sim::SchedulePolicy::kStaticPartition);

      // FastLanes: shared queue over FLMM pages (decode is fast but more
      // bytes per tuple -> higher single-core cost already measured).
      auto fl_jobs = sim::JobsFromCosts(fl_costs);
      auto r_fl = sim::Simulate(fl_jobs, p, sim::SchedulePolicy::kSharedQueue);

      PrintCell(static_cast<double>(p));
      PrintCell(static_cast<double>(tuples) / r_etsqp.makespan);
      PrintCell(static_cast<double>(tuples) / r_sboost.makespan);
      PrintCell(static_cast<double>(tuples) / r_fl.makespan);
      EndRow();
    }
  }
  std::printf(
      "\nExpected shape (paper Fig. 11): ETSQP gains the most from added"
      "\nthreads (shared queue, dependency-free slices); SBoost's gains"
      "\nflatten (dependent slices + static partitions idle); FastLanes"
      "\nscales but from a lower base (I/O-bound pages).\n");
  return 0;
}
