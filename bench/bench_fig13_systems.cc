// Reproduces paper Figure 13: system-deployment comparison of time-range and
// value-range aggregation queries across the Table II datasets:
//   IoTDB       = IotDbLite in scalar mode (serial decoding)
//   IoTDB-SIMD  = IotDbLite with the integrated ETSQP engine
//   MonetDB     = block engine (LZ columns, decompress-then-operate)
//   Spark/HDFS  = row engine (LZ row splits + per-query codegen latency)
// Reported: query latency (ms) per system, plus compressed footprint.

#include "bench/bench_util.h"
#include "db/block_engine.h"
#include "db/iotdb_lite.h"
#include "db/row_engine.h"
#include "workload/generators.h"

int main() {
  using namespace etsqp;
  using bench::EndRow;
  using bench::PrintCell;
  using bench::PrintHeader;

  double scale = 0.05 * bench::BenchScale();
  std::vector<workload::Dataset> datasets = workload::MakeAllDatasets(scale);

  for (const char* qkind : {"time-range", "value-range"}) {
    PrintHeader(std::string("Figure 13 (") + qkind +
                    " query): latency ms (lower is better)",
                {"Dataset", "IoTDB", "IoTDB-SIMD", "MonetDB", "Spark/HDFS"});
    for (const workload::Dataset& ds : datasets) {
      const workload::SeriesData& s = ds.series[0];
      db::IotDbLite iotdb(db::IotDbLite::Mode::kScalar);
      db::IotDbLite iotdb_simd(db::IotDbLite::Mode::kSimd);
      db::BlockEngine monet;
      db::RowEngine::Options row_opt;
      row_opt.query_setup_ms = 30.0 * bench::BenchScale();
      db::RowEngine spark(row_opt);
      for (auto* dbp : {&iotdb, &iotdb_simd}) {
        if (!dbp->CreateTimeseries("x").ok()) return 1;
        if (!dbp->InsertBatch("x", s.times.data(), s.values.data(),
                              s.times.size())
                 .ok()) {
          return 1;
        }
        if (!dbp->Flush().ok()) return 1;
      }
      if (!monet.CreateSeries("x").ok()) return 1;
      if (!monet.AppendBatch("x", s.times.data(), s.values.data(),
                             s.times.size())
               .ok()) {
        return 1;
      }
      if (!spark.CreateSeries("x").ok()) return 1;
      if (!spark.AppendBatch("x", s.times.data(), s.values.data(),
                             s.times.size())
               .ok()) {
        return 1;
      }

      bool time_query = std::string(qkind) == "time-range";
      exec::TimeRange tr;
      exec::ValueRange vr;
      if (time_query) {
        tr.lo = s.times[s.times.size() / 4];
        tr.hi = s.times[3 * s.times.size() / 4];
      } else {
        vr.active = true;
        std::vector<int64_t> sorted = s.values;
        std::sort(sorted.begin(), sorted.end());
        vr.lo = sorted[sorted.size() / 4];
        vr.hi = sorted[3 * sorted.size() / 4];
      }
      char sql[256];
      if (time_query) {
        std::snprintf(sql, sizeof(sql),
                      "SELECT SUM(v) FROM x WHERE time >= %lld AND time <= "
                      "%lld",
                      static_cast<long long>(tr.lo),
                      static_cast<long long>(tr.hi));
      } else {
        std::snprintf(sql, sizeof(sql),
                      "SELECT SUM(v) FROM x WHERE v >= %lld AND v <= %lld",
                      static_cast<long long>(vr.lo),
                      static_cast<long long>(vr.hi));
      }

      PrintCell(ds.name);
      for (auto* dbp : {&iotdb, &iotdb_simd}) {
        double secs = bench::TimeBest(
            [&] {
              if (!dbp->Query(sql).ok()) std::abort();
            },
            0.03, 7);
        PrintCell(secs * 1e3);
      }
      {
        double secs = bench::TimeBest(
            [&] {
              if (!monet.Aggregate("x", exec::AggFunc::kSum, tr, vr).ok()) {
                std::abort();
              }
            },
            0.03, 7);
        PrintCell(secs * 1e3);
      }
      {
        // One run: the fixed setup latency dominates and repeats add nothing.
        bench::Timer t;
        if (!spark.Aggregate("x", exec::AggFunc::kSum, tr, vr).ok()) {
          std::abort();
        }
        PrintCell(t.Seconds() * 1e3);
      }
      EndRow();
    }
  }
  std::printf(
      "\nExpected shape (paper Fig. 13 / Section VII-E): IoTDB-SIMD 10-40%%"
      "\nfaster than scalar IoTDB on simple queries; both beat MonetDB-style"
      "\nblock decompression (generic codec = more I/O + materialization)"
      "\nand Spark/HDFS (setup latency + inefficient compressor).\n");
  return 0;
}
