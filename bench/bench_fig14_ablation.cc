// Reproduces paper Figure 14: ablation of the parallel pipeline designs.
//  (a) Fused-decoder count: execution time as the pipeline fuses more of
//      unpack -> flatten -> accumulate -> aggregate (Section IV).
//  (b) Staged time breakdown: load/unpack/delta/filter/aggregate shares.
//  (c-d) Page-slice sweep: idle time vs materialization when splitting one
//      page into more slices (scheduler simulator over measured costs;
//      splitting the pipeline into two tasks avoids idling but materializes
//      unpacked data - more memory I/O).

#include <cstring>
#include <numeric>
#include <random>

#include "bench/bench_util.h"
#include "common/aligned_buffer.h"
#include "common/bitstream.h"
#include "encoding/bitpack.h"
#include "encoding/delta_rle.h"
#include "exec/fusion.h"
#include "sim/sched_sim.h"
#include "simd/agg_simd.h"
#include "simd/filter_simd.h"
#include "simd/rle_flatten.h"
#include "simd/transposed_unpack.h"
#include "simd/unpack.h"

namespace etsqp {
namespace {

using bench::EndRow;
using bench::PrintCell;
using bench::PrintHeader;

struct RunData {
  std::vector<int64_t> values;
  enc::EncodedColumn dr;     // Delta-RLE encoding
  AlignedBuffer dr_buf;
};

RunData MakeData(size_t n) {
  std::mt19937_64 rng(5);
  RunData d;
  d.values.reserve(n);
  int64_t v = 0;
  while (d.values.size() < n) {
    int64_t delta = static_cast<int64_t>(rng() % 16);
    size_t run = 8 + rng() % 64;
    for (size_t k = 0; k < run && d.values.size() < n; ++k) {
      d.values.push_back(v += delta);
    }
  }
  d.dr = enc::DeltaRleEncoder().Encode(d.values.data(), d.values.size());
  d.dr_buf.Assign(d.dr.bytes.data(), d.dr.bytes.size());
  return d;
}

}  // namespace
}  // namespace etsqp

int main() {
  using namespace etsqp;
  size_t n = static_cast<size_t>(2'000'000 * bench::BenchScale());
  RunData data = MakeData(n);
  auto parsed = enc::DeltaRleColumn::Parse(data.dr_buf.data(),
                                           data.dr_buf.size());
  if (!parsed.ok()) return 1;
  const enc::DeltaRleColumn& col = parsed.value();
  uint32_t np = col.num_pairs();

  // ---------------- (a) fused decoder count ----------------
  PrintHeader("Figure 14(a): SUM execution time vs fused decoders",
              {"Fusion level", "time_ms", "speedup"});
  std::vector<int32_t> deltas(np);
  std::vector<uint32_t> runs(np);
  std::vector<int32_t> flat(n);

  auto unpack_pairs = [&] {
    simd::UnpackBE32(col.packed_deltas(), data.dr_buf.size(), np,
                     col.delta_width(),
                     reinterpret_cast<uint32_t*>(deltas.data()));
    simd::UnpackBE32(col.packed_runs(), data.dr_buf.size(), np,
                     col.run_width(), runs.data());
    int32_t md = static_cast<int32_t>(col.min_delta());
    for (uint32_t i = 0; i < np; ++i) {
      deltas[i] += md;
      runs[i] += 1;
    }
  };

  // Level 0: no fusion — unpack, flatten, accumulate (flatten emits deltas
  // per position; accumulate = prefix sum), then aggregate.
  double t0 = bench::TimeBest([&] {
    unpack_pairs();
    size_t m = simd::FlattenDeltaRunsScalar(deltas.data(), runs.data(), np, 0,
                                            flat.data());
    (void)m;
    // flat currently holds running values already; emulate the separate
    // accumulate stage over raw deltas instead:
    volatile int64_t sink = simd::SumInt32(flat.data(), n - 1);
    (void)sink;
  });
  // Level 1: fuse unpack+flatten (SIMD ramp flatten produces decoded values
  // directly), aggregate decoded vector.
  double t1 = bench::TimeBest([&] {
    unpack_pairs();
    size_t m = simd::FlattenDeltaRuns(deltas.data(), runs.data(), np, 0,
                                      flat.data());
    volatile int64_t sink = simd::SumInt32(flat.data(), m);
    (void)sink;
  });
  // Level 2: fully fused — closed-form per-pair aggregation, no flatten, no
  // accumulate (Section IV).
  double t2 = bench::TimeBest([&] {
    exec::DeltaRleAggregates agg;
    if (!exec::FusedAggDeltaRle(col, 0, n, false, &agg).ok()) std::abort();
    volatile int64_t sink = agg.sum;
    (void)sink;
  });
  PrintCell("3-stage");
  PrintCell(t0 * 1e3);
  PrintCell(1.0);
  EndRow();
  PrintCell("fuse-flatten");
  PrintCell(t1 * 1e3);
  PrintCell(t0 / t1);
  EndRow();
  PrintCell("fully-fused");
  PrintCell(t2 * 1e3);
  PrintCell(t0 / t2);
  EndRow();

  // ---------------- (b) staged time breakdown ----------------
  // TS2DIFF pipeline: load (memcpy) -> unpack -> delta -> filter -> agg.
  PrintHeader("Figure 14(b): stage shares of the TS2DIFF pipeline",
              {"Stage", "time_ms", "share_%"});
  std::mt19937_64 rng(17);
  size_t m = n;
  int width = 10;
  std::vector<uint64_t> residuals(m);
  for (auto& r : residuals) r = rng() & ((1u << width) - 1);
  BitWriter w;
  enc::PackBE(residuals.data(), m, width, &w);
  auto packed_bytes = w.TakeBuffer();
  AlignedBuffer src;
  src.Assign(packed_bytes.data(), packed_bytes.size());
  AlignedBuffer dst(src.size());
  std::vector<int32_t> decoded(m);
  std::vector<uint64_t> mask((m + 63) / 64);

  double t_load = bench::TimeBest(
      [&] { std::memcpy(dst.data(), src.data(), src.size()); });
  double t_unpack = bench::TimeBest([&] {
    simd::UnpackBE32(src.data(), src.size(), m, width,
                     reinterpret_cast<uint32_t*>(decoded.data()));
  });
  double t_unpack_delta = bench::TimeBest([&] {
    simd::DeltaDecodeOffsetsUnordered(src.data(), src.size(), m, width, 1, 0,
                                      0, decoded.data());
  });
  double t_delta = t_unpack_delta > t_unpack ? t_unpack_delta - t_unpack : 0;
  double t_filter = bench::TimeBest([&] {
    simd::RangeFilterMaskInt32(decoded.data(), m, 1000, 100000000,
                               mask.data());
  });
  double t_agg = bench::TimeBest([&] {
    volatile int64_t sink =
        simd::MaskedSumInt32(decoded.data(), mask.data(), m);
    (void)sink;
  });
  double total = t_load + t_unpack + t_delta + t_filter + t_agg;
  auto stage = [&](const char* name, double t) {  // total finalized below
    PrintCell(name);
    PrintCell(t * 1e3);
    PrintCell(100.0 * t / total);
    EndRow();
  };
  double t_mat = bench::TimeBest([&] {
    std::memcpy(dst.data(), decoded.data(),
                std::min(dst.size(), m * sizeof(int32_t)));
  });
  total += t_mat;
  stage("load (mem I/O)", t_load);
  stage("unpack", t_unpack);
  stage("delta recover", t_delta);
  stage("filter", t_filter);
  stage("aggregate", t_agg);
  stage("materialize (mem I/O)", t_mat);

  // ---------------- (c-d) slice sweep ----------------
  PrintHeader(
      "Figure 14(c-d): one page on 8 cores — slices vs idle vs "
      "materialization",
      {"Slices", "chained_ms", "idle_ms", "two-task_ms", "extra_matIO_ms"});
  // Measured single-core cost of the whole page (unpack+delta+agg):
  double page_cost = bench::TimeBest([&] {
    simd::DeltaDecodeOffsetsUnordered(src.data(), src.size(), m, width, 1, 0,
                                      0, decoded.data());
    volatile int64_t sink = simd::SumInt32(decoded.data(), m);
    (void)sink;
  });
  // Materialization penalty per slice split: write + re-read the unpacked
  // intermediate (measured memcpy of the decoded array).
  double mat_cost = bench::TimeBest([&] {
    std::memcpy(dst.data(), decoded.data(),
                std::min(dst.size(), m * sizeof(int32_t)));
  });
  for (int slices : {1, 2, 4, 8, 16}) {
    // Chained: slices depend on the previous slice's prefix sums.
    auto chained = sim::SlicedJobs({page_cost}, slices, 0.0, true);
    auto rc = sim::Simulate(chained, 8, sim::SchedulePolicy::kSharedQueue);
    // Two-task split: phase 1 (local sums) all parallel, phase 2 (carry add)
    // parallel after a barrier — modeled as 2 independent waves, but each
    // split materializes intermediates (extra memory I/O).
    auto wave = sim::SlicedJobs({page_cost / 2}, slices, 0.0, false);
    auto r1 = sim::Simulate(wave, 8, sim::SchedulePolicy::kSharedQueue);
    double two_task = 2 * r1.makespan + (slices > 1 ? mat_cost : 0.0);
    PrintCell(static_cast<double>(slices));
    PrintCell(rc.makespan * 1e3);
    PrintCell(rc.total_idle * 1e3);
    PrintCell(two_task * 1e3);
    PrintCell((slices > 1 ? mat_cost : 0.0) * 1e3);
    EndRow();
  }

  std::printf(
      "\nExpected shape (paper Fig. 14): (a) each fused decoder removes a"
      "\npass — fully fused aggregation is fastest by a wide margin;"
      "\n(b) memory I/O is a top stage (~40-50%% with load+materialize);"
      "\n(c-d) chained slices leave cores idle; the two-task split removes"
      "\nidle time but pays materialization I/O as slices grow.\n");
  return 0;
}
