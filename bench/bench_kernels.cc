// Google-benchmark microbenchmarks of the SIMD kernels (the instruction-level
// building blocks of Sections II-B/III-A): constant-width unpack, transposed
// Delta recovery, SBoost-style prefix-sum decode, Repeat flatten, range
// filter, masked aggregation, and the fused weighted-ramp SUM.

#include <benchmark/benchmark.h>

#include <random>

#include "common/aligned_buffer.h"
#include "common/bit_util.h"
#include "common/bitstream.h"
#include "encoding/bitpack.h"
#include "simd/agg_simd.h"
#include "simd/delta_simd.h"
#include "simd/filter_simd.h"
#include "simd/rle_flatten.h"
#include "simd/transposed_unpack.h"
#include "simd/transposed_unpack_avx512.h"
#include "simd/unpack.h"

namespace etsqp {
namespace {

constexpr size_t kN = 1 << 20;

AlignedBuffer MakePacked(int width, size_t n) {
  std::mt19937_64 rng(width);
  std::vector<uint64_t> values(n);
  for (auto& v : values) v = rng() & MaskLow64(width);
  BitWriter w;
  enc::PackBE(values.data(), n, width, &w);
  auto bytes = w.TakeBuffer();
  AlignedBuffer buf;
  buf.Assign(bytes.data(), bytes.size());
  return buf;
}

void BM_UnpackScalar(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  AlignedBuffer buf = MakePacked(width, kN);
  std::vector<uint32_t> out(kN);
  for (auto _ : state) {
    simd::UnpackBE32Scalar(buf.data(), buf.size(), kN, width, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_UnpackScalar)->Arg(10)->Arg(25);

void BM_UnpackAvx2(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  AlignedBuffer buf = MakePacked(width, kN);
  std::vector<uint32_t> out(kN);
  for (auto _ : state) {
    simd::UnpackBE32Avx2(buf.data(), buf.size(), kN, width, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_UnpackAvx2)->Arg(3)->Arg(10)->Arg(17)->Arg(25)->Arg(30);

void BM_UnpackAvx512(benchmark::State& state) {
  if (!simd::Avx512Available()) {
    state.SkipWithError("no AVX-512 VBMI");
    return;
  }
  int width = static_cast<int>(state.range(0));
  AlignedBuffer buf = MakePacked(width, kN);
  std::vector<uint32_t> out(kN);
  for (auto _ : state) {
    simd::UnpackBE32Avx512(buf.data(), buf.size(), kN, width, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_UnpackAvx512)->Arg(3)->Arg(10)->Arg(25);

void BM_DeltaDecodeScalar(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  AlignedBuffer buf = MakePacked(width, kN);
  std::vector<int32_t> out(kN);
  for (auto _ : state) {
    simd::DeltaDecodeOffsetsScalar(buf.data(), buf.size(), kN, width, 1, 0,
                                   out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_DeltaDecodeScalar)->Arg(10);

void BM_DeltaDecodeTransposed(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  AlignedBuffer buf = MakePacked(width, kN);
  std::vector<int32_t> out(kN);
  for (auto _ : state) {
    simd::DeltaDecodeOffsetsAvx2(buf.data(), buf.size(), kN, width, 1, 0, 0,
                                 out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_DeltaDecodeTransposed)->Arg(3)->Arg(10)->Arg(25);

void BM_DeltaDecodeTransposedUnordered(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  AlignedBuffer buf = MakePacked(width, kN);
  std::vector<int32_t> out(kN);
  for (auto _ : state) {
    simd::DeltaDecodeOffsetsUnordered(buf.data(), buf.size(), kN, width, 1, 0,
                                      0, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_DeltaDecodeTransposedUnordered)->Arg(3)->Arg(10)->Arg(25);

void BM_DeltaDecodeAvx512Unordered(benchmark::State& state) {
  if (!simd::Avx512Available()) {
    state.SkipWithError("no AVX-512 VBMI");
    return;
  }
  int width = static_cast<int>(state.range(0));
  AlignedBuffer buf = MakePacked(width, kN);
  std::vector<int32_t> out(kN);
  for (auto _ : state) {
    simd::DeltaDecodeOffsetsAvx512Unordered(buf.data(), buf.size(), kN, width,
                                            1, 0, 0, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_DeltaDecodeAvx512Unordered)->Arg(3)->Arg(10)->Arg(25);

void BM_DeltaDecodeSboost(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  AlignedBuffer buf = MakePacked(width, kN);
  std::vector<int32_t> out(kN);
  for (auto _ : state) {
    simd::SboostDeltaDecode(buf.data(), buf.size(), kN, width, 1, 0,
                            out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_DeltaDecodeSboost)->Arg(3)->Arg(10)->Arg(25);

void BM_RleFlatten(benchmark::State& state) {
  size_t run = static_cast<size_t>(state.range(0));
  size_t pairs = kN / run;
  std::vector<int32_t> deltas(pairs, 3);
  std::vector<uint32_t> runs(pairs, static_cast<uint32_t>(run));
  std::vector<int32_t> out(kN);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::FlattenDeltaRuns(
        deltas.data(), runs.data(), pairs, 0, out.data()));
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_RleFlatten)->Arg(4)->Arg(64)->Arg(1024);

void BM_RangeFilter(benchmark::State& state) {
  std::mt19937_64 rng(7);
  std::vector<int32_t> values(kN);
  for (auto& v : values) v = static_cast<int32_t>(rng());
  std::vector<uint64_t> mask(kN / 64);
  for (auto _ : state) {
    simd::RangeFilterMaskInt32(values.data(), kN, -1000000, 1000000,
                               mask.data());
    benchmark::DoNotOptimize(mask.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_RangeFilter);

void BM_MaskedSum(benchmark::State& state) {
  std::mt19937_64 rng(9);
  std::vector<int32_t> values(kN);
  for (auto& v : values) v = static_cast<int32_t>(rng() % 100000);
  std::vector<uint64_t> mask(kN / 64);
  for (auto& m : mask) m = rng();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simd::MaskedSumInt32(values.data(), mask.data(), kN));
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_MaskedSum);

void BM_FusedWeightedRampSum(benchmark::State& state) {
  std::mt19937_64 rng(11);
  std::vector<int32_t> values(kN);
  for (auto& v : values) v = static_cast<int32_t>(rng() % 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::WeightedRampSumInt32(values.data(), kN));
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_FusedWeightedRampSum);

void BM_JoinMasks(benchmark::State& state) {
  std::mt19937_64 rng(15);
  size_t n = kN / 4;
  std::vector<int64_t> l(n), r(n);
  int64_t t = 0;
  for (auto& x : l) x = (t += 1 + static_cast<int64_t>(rng() % 3));
  t = 1;
  for (auto& x : r) x = (t += 1 + static_cast<int64_t>(rng() % 3));
  std::vector<uint64_t> ml((n + 63) / 64), mr((n + 63) / 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simd::JoinMasksInt64(l.data(), n, r.data(), n, ml.data(), mr.data()));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_JoinMasks);

void BM_PrefixSum(benchmark::State& state) {
  std::mt19937_64 rng(13);
  std::vector<int32_t> base(kN);
  for (auto& v : base) v = static_cast<int32_t>(rng() % 100);
  std::vector<int32_t> work(kN);
  for (auto _ : state) {
    work = base;
    simd::PrefixSumInt32(work.data(), kN);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_PrefixSum);

}  // namespace
}  // namespace etsqp

BENCHMARK_MAIN();
