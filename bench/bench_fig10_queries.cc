// Reproduces paper Figure 10: throughput of the Table III benchmark queries
// Q1-Q6 for ETSQP, ETSQP-prune, Serial, FastLanes, and SBoost over the
// Table II datasets (TS2DIFF-encoded; FastLanes runs on FLMM1024-encoded
// pages). Throughput follows Section VII-B: tuples of loaded pages per
// second, counting tuples of pruned pages/slices. Default filter selectivity
// 0.5; each sliding window instance has ~10^3 points.

#include <algorithm>

#include "baselines/fastlanes_exec.h"
#include "bench/bench_util.h"
#include "exec/engine.h"
#include "sql/planner.h"
#include "workload/generators.h"

namespace etsqp {
namespace {

struct DatasetFixture {
  workload::Dataset data;
  storage::SeriesStore ts2diff_store;
  storage::SeriesStore fastlanes_store;
  std::string s1, s2;      // first two series names
  int64_t window_dt = 1;   // ~1000 points per window
  int64_t t_min = 0;
  int64_t median_value = 0;
};

DatasetFixture MakeFixture(workload::Dataset ds) {
  DatasetFixture f;
  f.data = std::move(ds);
  auto names = workload::LoadDataset(f.data, {}, &f.ts2diff_store);
  auto names2 =
      baselines::LoadDatasetFastLanes(f.data, &f.fastlanes_store);
  if (!names.ok() || !names2.ok()) std::abort();
  f.s1 = names.value()[0];
  f.s2 = names.value()[names.value().size() > 1 ? 1 : 0];
  const workload::SeriesData& s = f.data.series[0];
  f.t_min = s.times.front();
  int64_t span = s.times.back() - s.times.front();
  f.window_dt =
      std::max<int64_t>(1, span * 1000 / static_cast<int64_t>(s.times.size()));
  std::vector<int64_t> sorted = s.values;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  f.median_value = sorted[sorted.size() / 2];  // selectivity ~0.5
  return f;
}

std::string QuerySql(int q, const DatasetFixture& f) {
  char buf[256];
  switch (q) {
    case 1:
      std::snprintf(buf, sizeof(buf), "SELECT SUM(v) FROM %s SW(%lld, %lld)",
                    f.s1.c_str(), static_cast<long long>(f.t_min),
                    static_cast<long long>(f.window_dt));
      break;
    case 2:
      std::snprintf(buf, sizeof(buf), "SELECT AVG(v) FROM %s SW(%lld, %lld)",
                    f.s1.c_str(), static_cast<long long>(f.t_min),
                    static_cast<long long>(f.window_dt));
      break;
    case 3:
      std::snprintf(buf, sizeof(buf), "SELECT SUM(v) FROM %s WHERE v > %lld",
                    f.s1.c_str(), static_cast<long long>(f.median_value));
      break;
    case 4:
      std::snprintf(buf, sizeof(buf), "SELECT %s.v + %s.v FROM %s, %s",
                    f.s1.c_str(), f.s2.c_str(), f.s1.c_str(), f.s2.c_str());
      break;
    case 5:
      std::snprintf(buf, sizeof(buf),
                    "SELECT * FROM %s UNION %s ORDER BY TIME", f.s1.c_str(),
                    f.s2.c_str());
      break;
    default:
      std::snprintf(buf, sizeof(buf), "SELECT * FROM %s, %s", f.s1.c_str(),
                    f.s2.c_str());
      break;
  }
  return buf;
}

}  // namespace
}  // namespace etsqp

int main() {
  using namespace etsqp;
  using bench::EndRow;
  using bench::PrintCell;
  using bench::PrintHeader;

  double scale = 0.05 * bench::BenchScale();
  std::vector<DatasetFixture> fixtures;
  for (workload::Dataset& ds : workload::MakeAllDatasets(scale)) {
    fixtures.push_back(MakeFixture(std::move(ds)));
  }

  struct EngineSpec {
    const char* name;
    exec::PipelineOptions options;
    bool fastlanes_store;
  };
  std::vector<EngineSpec> engines = {
      {"ETSQP", exec::PipelineOptions::Etsqp(1), false},
      {"ETSQP-prune", exec::PipelineOptions::EtsqpPrune(1), false},
      {"Serial", exec::PipelineOptions::Serial(), false},
      {"FastLanes", exec::PipelineOptions::FastLanes(1), true},
      {"SBoost", exec::PipelineOptions::Sboost(1), false},
  };

  for (int q = 1; q <= 6; ++q) {
    PrintHeader("Figure 10 (Q" + std::to_string(q) +
                    "): throughput, tuples of loaded pages / second",
                {"Dataset", "ETSQP", "ETSQP-prune", "Serial", "FastLanes",
                 "SBoost"});
    for (DatasetFixture& f : fixtures) {
      PrintCell(f.data.name);
      std::string sql = QuerySql(q, f);
      auto plan = sql::PlanQuery(sql);
      if (!plan.ok()) {
        std::fprintf(stderr, "plan failed: %s\n",
                     plan.status().ToString().c_str());
        return 1;
      }
      for (const EngineSpec& spec : engines) {
        const storage::SeriesStore& store =
            spec.fastlanes_store ? f.fastlanes_store : f.ts2diff_store;
        exec::Engine engine(spec.options);
        exec::QueryStats stats;
        double secs = bench::TimeBest(
            [&] {
              auto result = engine.Execute(plan.value(), store);
              if (!result.ok()) std::abort();
              stats = result.value().stats;
            },
            0.05, 7);
        PrintCell(bench::Throughput(stats, secs));
        bench::ExportJson("fig10_q" + std::to_string(q),
                          f.data.name + "/" + spec.name, secs, stats);
      }
      EndRow();
    }
  }
  std::printf(
      "\nExpected shape (paper Fig. 10): ETSQP(-prune) up to an order of"
      "\nmagnitude over Serial and ~3-10x over SBoost/FastLanes; pruning"
      "\nhelps most on Q3 and on large regular datasets (Time); the gap vs"
      "\nFastLanes widens on two-column queries Q5/Q6 (I/O volume).\n");
  return 0;
}
