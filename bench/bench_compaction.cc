// Background-compaction benchmark: storage-size reduction of adaptive
// per-page re-encoding on a mixed-shape workload (every series sealed under
// the fixed TS2DIFF/Gorilla defaults first), re-encode throughput of the
// compaction pass itself, and aggregation latency before/after — the pages
// a pass re-encodes must not just be smaller but at least as fast to serve.
//
//   ETSQP_BENCH_SCALE   scales the point counts (default 1.0)
//   ETSQP_BENCH_JSON    appends one JSON line per case
//
// The shapes mirror the CodecAdvisor's shortlisting axes: long constant
// runs (the run family's home turf, TS2DIFF's worst case when the levels
// jump wide), tiny monotone deltas (TS2DIFF already near-optimal — the
// advisor must not churn), a random walk, and low-precision floats for the
// XOR family.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "db/iotdb_lite.h"

namespace etsqp {
namespace {

struct Shape {
  const char* name;
  bool is_float;
};

constexpr Shape kShapes[] = {
    {"runs", false},
    {"deltas", false},
    {"walk", false},
    {"floats", true},
};

void FillSeries(db::IotDbLite* dbi, size_t points) {
  std::vector<int64_t> times(points);
  for (size_t i = 0; i < points; ++i) {
    times[i] = 1'600'000'000'000 + static_cast<int64_t>(i) * 1000;
  }
  std::vector<int64_t> iv(points);
  std::vector<double> fv(points);
  uint64_t rng = 0xabcdef;
  int64_t x = 0;
  for (const Shape& s : kShapes) {
    for (size_t i = 0; i < points; ++i) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      if (std::string(s.name) == "runs") {
        iv[i] = static_cast<int64_t>(i / 700) * (int64_t{1} << 40);
      } else if (std::string(s.name) == "deltas") {
        iv[i] = 5'000'000 + static_cast<int64_t>(i) * 3 +
                static_cast<int64_t>(i % 2);
      } else if (std::string(s.name) == "walk") {
        x += static_cast<int64_t>(rng >> 33) % 2001 - 1000;
        iv[i] = x;
      } else {
        fv[i] = 20.0 + static_cast<double>(i % 32) * 0.125;
      }
    }
    if (s.is_float) {
      if (!dbi->CreateFloatTimeseries(s.name).ok()) std::abort();
      if (!dbi->InsertBatchF64(s.name, times.data(), fv.data(), points)
               .ok()) {
        std::abort();
      }
    } else {
      if (!dbi->CreateTimeseries(s.name, /*page_size=*/4096).ok()) {
        std::abort();
      }
      if (!dbi->InsertBatch(s.name, times.data(), iv.data(), points).ok()) {
        std::abort();
      }
    }
  }
  if (!dbi->Flush().ok()) std::abort();
}

double QueryLatency(const db::IotDbLite& dbi, const Shape& s,
                    exec::ExecStats* stats) {
  const std::string sql =
      std::string("SELECT SUM(") + s.name + ") FROM " + s.name + ";";
  return bench::TimeBest([&] {
    auto result = dbi.Query(sql);
    if (!result.ok()) std::abort();
    *stats = result.value().stats;
  });
}

/// One JSON line per size row (bench_util's ExportJson shape plus the
/// before/after byte counters the trajectory tooling diffs).
void ExportSizeJson(const std::string& case_name, uint64_t before,
                    uint64_t after, double pass_seconds) {
  const char* path = std::getenv("ETSQP_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  double reduction =
      before > 0 ? 1.0 - static_cast<double>(after) / static_cast<double>(before)
                 : 0.0;
  std::fprintf(f,
               "{\"bench\": \"bench_compaction\", \"case\": \"%s\", "
               "\"seconds\": %.9f, \"bytes_before\": %llu, "
               "\"bytes_after\": %llu, \"reduction\": %.4f}\n",
               case_name.c_str(), pass_seconds,
               static_cast<unsigned long long>(before),
               static_cast<unsigned long long>(after), reduction);
  std::fclose(f);
}

void Run(size_t points) {
  db::IotDbLite dbi;
  FillSeries(&dbi, points);

  // Latency over the fixed-codec sealing.
  exec::ExecStats before_stats[4];
  double before_lat[4];
  for (size_t i = 0; i < 4; ++i) {
    before_lat[i] = QueryLatency(dbi, kShapes[i], &before_stats[i]);
  }
  uint64_t before_bytes[4];
  uint64_t total_before = 0;
  for (size_t i = 0; i < 4; ++i) {
    before_bytes[i] = dbi.store()->EncodedBytes(kShapes[i].name);
    total_before += before_bytes[i];
  }

  // The compaction pass: adaptive re-encode + merge, timed end to end.
  if (!dbi.EnableCompaction().ok()) std::abort();
  bench::Timer pass_timer;
  if (!dbi.Compact().ok()) std::abort();
  double pass_seconds = pass_timer.Seconds();
  metrics::CompactionStats cs = dbi.compaction_stats();

  uint64_t after_bytes[4];
  uint64_t total_after = 0;
  for (size_t i = 0; i < 4; ++i) {
    after_bytes[i] = dbi.store()->EncodedBytes(kShapes[i].name);
    total_after += after_bytes[i];
  }

  bench::PrintHeader("Storage size: fixed-codec sealing vs compacted",
                     {"series", "bytes before", "bytes after", "reduction"});
  for (size_t i = 0; i < 4; ++i) {
    bench::PrintCell(kShapes[i].name);
    bench::PrintCell(static_cast<double>(before_bytes[i]));
    bench::PrintCell(static_cast<double>(after_bytes[i]));
    double red = before_bytes[i] > 0
                     ? 100.0 * (1.0 - static_cast<double>(after_bytes[i]) /
                                          static_cast<double>(before_bytes[i]))
                     : 0.0;
    bench::PrintCell(std::string() +
                     (red >= 0 ? "-" : "+") +
                     std::to_string(std::abs(red)).substr(0, 5) + "%");
    bench::EndRow();
    ExportSizeJson(std::string("size/") + kShapes[i].name, before_bytes[i],
                   after_bytes[i], pass_seconds);
  }
  bench::PrintCell("total");
  bench::PrintCell(static_cast<double>(total_before));
  bench::PrintCell(static_cast<double>(total_after));
  bench::PrintCell(std::to_string(100.0 * (1.0 - static_cast<double>(total_after) /
                                                     static_cast<double>(total_before)))
                       .substr(0, 5) +
                   "% saved");
  bench::EndRow();
  ExportSizeJson("size/total", total_before, total_after, pass_seconds);

  bench::PrintHeader("Re-encode throughput (one synchronous pass)",
                     {"points", "seconds", "points/s", "pages reencoded"});
  const double total_points = 4.0 * static_cast<double>(points);
  bench::PrintCell(total_points);
  bench::PrintCell(pass_seconds);
  bench::PrintCell(total_points / pass_seconds);
  bench::PrintCell(static_cast<double>(cs.pages_reencoded));
  bench::EndRow();
  exec::ExecStats pass_stats;
  pass_stats.tuples_in_pages = static_cast<uint64_t>(total_points);
  bench::ExportJson("bench_compaction", "compact/pass", pass_seconds,
                    pass_stats);

  bench::PrintHeader("Aggregation latency before/after compaction",
                     {"series", "before ms", "after ms", "speedup"});
  for (size_t i = 0; i < 4; ++i) {
    exec::ExecStats after_stats;
    double after_lat = QueryLatency(dbi, kShapes[i], &after_stats);
    bench::PrintCell(kShapes[i].name);
    bench::PrintCell(before_lat[i] * 1e3);
    bench::PrintCell(after_lat * 1e3);
    bench::PrintCell(before_lat[i] / after_lat);
    bench::EndRow();
    bench::ExportJson("bench_compaction",
                      std::string("query_before/") + kShapes[i].name,
                      before_lat[i], before_stats[i]);
    bench::ExportJson("bench_compaction",
                      std::string("query_after/") + kShapes[i].name, after_lat,
                      after_stats);
  }

  std::printf(
      "\ncompaction: runs=%llu pages %llu->%llu reencoded=%llu "
      "bytes %llu->%llu\n",
      static_cast<unsigned long long>(cs.runs),
      static_cast<unsigned long long>(cs.pages_in),
      static_cast<unsigned long long>(cs.pages_out),
      static_cast<unsigned long long>(cs.pages_reencoded),
      static_cast<unsigned long long>(cs.bytes_in),
      static_cast<unsigned long long>(cs.bytes_out));
}

}  // namespace
}  // namespace etsqp

int main() {
  double scale = etsqp::bench::BenchScale();
  size_t points = static_cast<size_t>(250'000 * scale);
  points = std::max<size_t>(points, 8192);
  etsqp::Run(points);
  return 0;
}
