// Reproduces paper Table I: the combined-encoder taxonomy, extended with
// measured compression ratios (encoded bytes / raw bytes) of every encoder on
// a smooth IoT series, a run-heavy series, and float sensor readings — the
// evidence behind "IoT encoders combine Delta-Repeat-Packing for space
// efficiency".

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "bench/bench_util.h"
#include "encoding/chimp.h"
#include "encoding/delta_rle.h"
#include "encoding/elf.h"
#include "encoding/fastlanes.h"
#include "encoding/gorilla.h"
#include "encoding/rlbe.h"
#include "encoding/sprintz.h"
#include "encoding/streamvbyte.h"
#include "encoding/ts2diff.h"

namespace etsqp {
namespace {

using bench::EndRow;
using bench::PrintCell;
using bench::PrintHeader;

std::vector<int64_t> SmoothSeries(size_t n) {
  std::mt19937_64 rng(1);
  std::vector<int64_t> v(n);
  int64_t x = 1'000'000;
  for (auto& y : v) {
    x += static_cast<int64_t>(rng() % 9) - 4;
    y = x;
  }
  return v;
}

std::vector<int64_t> RunnySeries(size_t n) {
  std::mt19937_64 rng(2);
  std::vector<int64_t> v;
  v.reserve(n);
  int64_t x = 0;
  while (v.size() < n) {
    int64_t d = static_cast<int64_t>(rng() % 5);
    size_t run = 50 + rng() % 500;
    for (size_t k = 0; k < run && v.size() < n; ++k) v.push_back(x += d);
  }
  return v;
}

std::vector<double> FloatSeries(size_t n) {
  std::mt19937_64 rng(3);
  std::vector<double> v(n);
  double x = 21.5;
  for (auto& y : v) {
    x += (static_cast<double>(rng() % 100) - 50.0) / 100.0;
    y = std::round(x * 100.0) / 100.0;  // 2-decimal sensor readings
  }
  return v;
}

double Ratio(size_t encoded, size_t n) {
  return static_cast<double>(encoded) / (n * 8.0);
}

}  // namespace
}  // namespace etsqp

int main() {
  using namespace etsqp;
  const size_t n = static_cast<size_t>(200'000 * bench::BenchScale());

  std::printf("Table I: combined encoders for IoT data\n");
  PrintHeader("encoder taxonomy (Delta / Repeat / Packing)",
              {"Method", "Delta", "Repeat", "Packing"});
  auto row = [](const char* m, const char* d, const char* r, const char* p) {
    PrintCell(m);
    PrintCell(d);
    PrintCell(r);
    PrintCell(p);
    EndRow();
  };
  row("RLBE", "+-", "Run-length", "Fibonacci");
  row("TS_2DIFF", "+-", "None", "Bitpack");
  row("DELTA_RLE", "+-", "Run-length", "Bitpack");
  row("Sprintz", "+-", "None", "ZigZag+Bitpack");
  row("Chimp", "XOR", "None", "Pattern");
  row("Gorilla", "+-,XOR", "Flag", "Pattern");
  row("Elf", "XOR", "None", "Erase+Pattern");
  row("FastLanes", "+- (lane)", "None", "Bitpack/1024");
  row("StreamVByte", "+-", "None", "ZigZag+ByteAlign");

  std::vector<int64_t> smooth = SmoothSeries(n);
  std::vector<int64_t> runny = RunnySeries(n);
  std::vector<double> floats = FloatSeries(n);
  std::vector<uint64_t> float_words(n);
  std::memcpy(float_words.data(), floats.data(), n * 8);

  PrintHeader("measured compression ratio (encoded/raw, lower is better)",
              {"Method", "smooth-int", "runny-int", "float-2dp"});

  auto int_row = [&](const char* name, auto encode) {
    PrintCell(name);
    PrintCell(Ratio(encode(smooth), n));
    PrintCell(Ratio(encode(runny), n));
    PrintCell("-");
    EndRow();
  };
  int_row("TS_2DIFF", [](const std::vector<int64_t>& v) {
    return enc::Ts2DiffEncoder().Encode(v.data(), v.size()).bytes.size();
  });
  int_row("DELTA_RLE", [](const std::vector<int64_t>& v) {
    return enc::DeltaRleEncoder().Encode(v.data(), v.size()).bytes.size();
  });
  int_row("RLBE", [](const std::vector<int64_t>& v) {
    return enc::RlbeEncoder().Encode(v.data(), v.size()).bytes.size();
  });
  int_row("Sprintz", [](const std::vector<int64_t>& v) {
    return enc::SprintzEncoder().Encode(v.data(), v.size()).bytes.size();
  });
  int_row("FastLanes", [](const std::vector<int64_t>& v) {
    return enc::FastLanesEncoder().Encode(v.data(), v.size()).bytes.size();
  });
  int_row("Gorilla-ts", [](const std::vector<int64_t>& v) {
    return enc::GorillaTimestampEncoder()
        .Encode(v.data(), v.size())
        .bytes.size();
  });
  int_row("StreamVByte", [](const std::vector<int64_t>& v) {
    return enc::StreamVByteEncoder().Encode(v.data(), v.size()).bytes.size();
  });

  auto float_cell = [&](const char* name, size_t bytes) {
    PrintCell(name);
    PrintCell("-");
    PrintCell("-");
    PrintCell(Ratio(bytes, n));
    EndRow();
  };
  float_cell("Gorilla-val", enc::GorillaValueEncoder()
                                .Encode(float_words.data(), n)
                                .bytes.size());
  float_cell("Chimp",
             enc::ChimpEncoder().Encode(float_words.data(), n).bytes.size());
  float_cell("Elf",
             enc::ElfEncoder().EncodeDoubles(floats.data(), n).bytes.size());

  // Ingest-side cost of the two timestamp codecs: StreamVByte trades a
  // little space for branch-light byte-aligned encode (its reason to exist
  // next to TS2DIFF — see CodecAdvisor).
  PrintHeader("timestamp encode throughput (Mvalues/s, higher is better)",
              {"Method", "smooth-int", "runny-int", ""});
  auto tput_row = [&](const char* name, auto encode) {
    PrintCell(name);
    PrintCell(static_cast<double>(n) / bench::TimeBest([&] { encode(smooth); }) /
              1e6);
    PrintCell(static_cast<double>(n) / bench::TimeBest([&] { encode(runny); }) /
              1e6);
    PrintCell("-");
    EndRow();
  };
  tput_row("TS_2DIFF", [](const std::vector<int64_t>& v) {
    enc::Ts2DiffEncoder().Encode(v.data(), v.size());
  });
  tput_row("StreamVByte", [](const std::vector<int64_t>& v) {
    enc::StreamVByteEncoder().Encode(v.data(), v.size());
  });

  std::printf(
      "\nExpected shape (paper Section I/VIII): combined Delta-Repeat-Packing"
      "\nencoders compress far below raw; run-heavy data favours the Repeat"
      "\nstage (DELTA_RLE/RLBE); Elf < Chimp <= Gorilla on decimal floats;"
      "\nFastLanes trails the IoT encoders (raw base rows, block padding).\n");
  return 0;
}
