// Concurrent-query throughput on the sharded serving core: N client threads
// (64 / 128 / 256) issue fig10-style aggregations (Q1 sliding-window SUM,
// Q3 filtered SUM) over 8 series through db::Database at 1 / 4 / 8 shards.
// Every result is validated against a serial single-shard reference before
// it counts. Aggregate throughput follows the Section VII-B metric summed
// across clients: total tuples of loaded pages across all completed
// queries / wall seconds.
//
// A second panel turns the epoch-keyed result cache on (and bounds the
// client tenant's concurrency so the admission queue engages): repeat
// queries should collapse into cache hits, and the exported JSON carries
// the cache_hits / cache_misses / admission_wait_nanos counters.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "db/database.h"
#include "exec/thread_pool.h"

namespace etsqp {
namespace {

constexpr int kSeries = 8;
constexpr int kQueriesPerClient = 4;

/// Deterministic per-series data: values in [0, 100), times 0..n-1.
void FillDatabase(db::Database* db, int n) {
  for (int s = 0; s < kSeries; ++s) {
    std::string name = "clim" + std::to_string(s);
    if (!db->CreateTimeseries(name, 4096).ok()) std::abort();
    std::vector<int64_t> times(n), values(n);
    uint64_t rng = 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(s);
    for (int i = 0; i < n; ++i) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      times[i] = i;
      values[i] = static_cast<int64_t>(rng >> 33) % 100;
    }
    if (!db->InsertBatch(name, times.data(), values.data(), n).ok()) {
      std::abort();
    }
    if (!db->Flush().ok()) std::abort();
  }
}

/// The query mix: for each series a sliding-window SUM (~1000 windows) and
/// a ~50%-selective filtered SUM.
std::vector<std::string> QueryMix(int n) {
  std::vector<std::string> sqls;
  const long long dt = std::max(1, n / 1000);
  for (int s = 0; s < kSeries; ++s) {
    std::string name = "clim" + std::to_string(s);
    char buf[256];
    std::snprintf(buf, sizeof(buf), "SELECT SUM(%s) FROM %s SW(0, %lld)",
                  name.c_str(), name.c_str(), dt);
    sqls.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "SELECT SUM(%s) FROM %s WHERE %s > 49",
                  name.c_str(), name.c_str(), name.c_str());
    sqls.emplace_back(buf);
  }
  return sqls;
}

bool SameResult(const exec::QueryResult& a, const exec::QueryResult& b) {
  if (a.num_rows() != b.num_rows() || a.columns.size() != b.columns.size()) {
    return false;
  }
  for (size_t c = 0; c < a.columns.size(); ++c) {
    for (size_t r = 0; r < a.num_rows(); ++r) {
      double x = a.columns[c][r], y = b.columns[c][r];
      if (std::abs(x - y) > std::abs(x) * 1e-9 + 1e-6) return false;
    }
  }
  return true;
}

struct CellResult {
  double seconds = 0;
  exec::ExecStats merged;
  int queries = 0;
  bool ok = true;
};

/// `clients` threads round-robin the query mix as `tenant`, validating each
/// result; per-query stats merge into one ExecStats (pool deltas dropped —
/// they are process-wide, not per-query).
CellResult RunClients(const db::Database& db, const std::string& tenant,
                      const std::vector<std::string>& sqls,
                      const std::vector<exec::QueryResult>& expected,
                      int clients, int queries_per_client) {
  CellResult cell;
  std::atomic<int> bad{0};
  std::vector<exec::ExecStats> client_stats(clients);
  bench::Timer wall;
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (int i = 0; i < queries_per_client; ++i) {
        size_t idx = static_cast<size_t>(c * queries_per_client + i) %
                     sqls.size();
        auto r = db.Query(tenant, sqls[idx]);
        if (!r.ok() || !SameResult(r.value(), expected[idx])) {
          bad.fetch_add(1);
          return;
        }
        exec::ExecStats s = r.value().stats;
        s.pool = metrics::PoolStats{};
        client_stats[c].Merge(s);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  cell.seconds = wall.Seconds();
  cell.ok = bad.load() == 0;
  cell.queries = clients * queries_per_client;
  for (const exec::ExecStats& s : client_stats) cell.merged.Merge(s);
  return cell;
}

}  // namespace
}  // namespace etsqp

int main() {
  using namespace etsqp;
  using bench::EndRow;
  using bench::PrintCell;
  using bench::PrintHeader;

  double scale = 0.05 * bench::BenchScale();
  const int n = std::max(4000, static_cast<int>(1'000'000 * scale) / kSeries);
  const std::vector<std::string> sqls = QueryMix(n);

  // Serial single-shard reference: ground truth for every mix entry.
  db::Database reference(
      db::Database::Options{db::Database::Mode::kScalar, 1, 1, 0});
  FillDatabase(&reference, n);
  std::vector<exec::QueryResult> expected;
  for (const std::string& sql : sqls) {
    auto r = reference.Query(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "reference failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    expected.push_back(std::move(r).value());
  }

  const std::vector<int> kClientCounts = {64, 128, 256};
  PrintHeader("Concurrent queries: aggregate throughput, tuples/s "
              "(all-clients sum; cache off)",
              {"Shards", "clients=64", "clients=128", "clients=256"});
  for (int shards : {1, 4, 8}) {
    db::Database dbx(
        db::Database::Options{db::Database::Mode::kSimd, 2, shards, 0});
    dbx.SetCollectStats(true);
    FillDatabase(&dbx, n);
    PrintCell("shards=" + std::to_string(shards));
    for (int clients : kClientCounts) {
      CellResult cell = RunClients(dbx, "default", sqls, expected, clients,
                                   kQueriesPerClient);
      if (!cell.ok) {
        std::fprintf(stderr, "validation failed at shards=%d clients=%d\n",
                     shards, clients);
        return 1;
      }
      PrintCell(bench::Throughput(cell.merged, cell.seconds));
      bench::ExportJson("concurrent_queries",
                        "scaling/shards=" + std::to_string(shards) +
                            "/clients=" + std::to_string(clients),
                        cell.seconds, cell.merged);
    }
    EndRow();
  }

  // Cache panel: 8 shards, result cache on, the client tenant bounded so
  // the admission queue engages at high client counts. Each client repeats
  // the mix, so steady state is nearly all hits.
  db::Database cached(
      db::Database::Options{db::Database::Mode::kSimd, 2, 8, 32 << 20});
  cached.SetCollectStats(true);
  FillDatabase(&cached, n);
  db::Database::TenantOptions web;
  web.max_concurrent =
      static_cast<int>(std::max(4u, 2 * std::thread::hardware_concurrency()));
  web.max_queued = 1 << 20;  // queue, never reject: a latency bench
  cached.ConfigureTenant("web", web);

  std::vector<CellResult> cache_cells;
  for (int clients : kClientCounts) {
    CellResult cell = RunClients(cached, "web", sqls, expected, clients,
                                 2 * kQueriesPerClient);
    if (!cell.ok) {
      std::fprintf(stderr, "validation failed (cache on) at clients=%d\n",
                   clients);
      return 1;
    }
    bench::ExportJson("concurrent_queries",
                      "cache/shards=8/clients=" + std::to_string(clients),
                      cell.seconds, cell.merged);
    cache_cells.push_back(std::move(cell));
  }
  PrintHeader("Result cache on (8 shards, tenant-bounded concurrency)",
              {"Metric", "clients=64", "clients=128", "clients=256"});
  PrintCell("queries/s");
  for (const CellResult& cell : cache_cells) {
    PrintCell(cell.seconds > 0 ? cell.queries / cell.seconds : 0.0);
  }
  EndRow();
  PrintCell("hit rate %");
  for (const CellResult& cell : cache_cells) {
    uint64_t probes = cell.merged.cache_hits + cell.merged.cache_misses;
    PrintCell(probes > 0 ? 100.0 * static_cast<double>(
                                       cell.merged.cache_hits) /
                               static_cast<double>(probes)
                         : 0.0);
  }
  EndRow();
  PrintCell("queue wait ms");
  for (const CellResult& cell : cache_cells) {
    PrintCell(static_cast<double>(cell.merged.admission_wait_nanos) / 1e6);
  }
  EndRow();

  db::ResultCache::Stats cs = cached.cache_stats();
  auto tenants = cached.tenant_stats();
  const db::Database::TenantStats& ts = tenants["web"];
  std::printf(
      "\ncache: hits=%llu misses=%llu evictions=%llu entries=%llu "
      "bytes=%llu/%llu\n"
      "tenant web: admitted=%llu rejected(queue=%llu, memory=%llu) "
      "waited=%.3f ms\n"
      "pool: workers=%d threads_started=%llu tasks=%llu steals=%llu\n"
      "Expected shape: cache-off throughput grows from 1 to 4/8 shards at\n"
      "64+ clients (independent stores remove the snapshot bottleneck while\n"
      "every shard shares one work-stealing pool); with the cache on, hit\n"
      "rate approaches 100%% and queries/s decouples from data size.\n",
      static_cast<unsigned long long>(cs.hits),
      static_cast<unsigned long long>(cs.misses),
      static_cast<unsigned long long>(cs.evictions),
      static_cast<unsigned long long>(cs.entries),
      static_cast<unsigned long long>(cs.bytes),
      static_cast<unsigned long long>(cs.budget_bytes),
      static_cast<unsigned long long>(ts.admitted),
      static_cast<unsigned long long>(ts.rejected_queue),
      static_cast<unsigned long long>(ts.rejected_memory),
      static_cast<double>(ts.wait_nanos) / 1e6,
      exec::ThreadPool::Global().workers_running(),
      static_cast<unsigned long long>(
          exec::ThreadPool::Global().threads_started()),
      static_cast<unsigned long long>(exec::ThreadPool::Global().stats().tasks),
      static_cast<unsigned long long>(
          exec::ThreadPool::Global().stats().steals));
  return 0;
}
