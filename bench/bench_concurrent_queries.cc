// Concurrent-query throughput on the shared persistent executor: N client
// threads (1 / 4 / 16) each issue fig10-style aggregations (Q1 sliding-window
// SUM, Q3 filtered SUM) against one store through one Engine. Every result is
// validated against a serial reference before it counts. Aggregate throughput
// follows the Section VII-B metric summed across clients: total tuples of
// loaded pages across all completed queries / wall seconds.
//
// This is the scenario the fork-join scheduler could not express: multiple
// queries sharing one pool, each bounded by its own thread budget, with no
// thread construction on the steady-state path.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "exec/engine.h"
#include "exec/thread_pool.h"
#include "sql/planner.h"
#include "workload/generators.h"

namespace etsqp {
namespace {

struct Fixture {
  workload::Dataset data;
  storage::SeriesStore store;
  std::string series;
  int64_t t_min = 0;
  int64_t window_dt = 1;  // ~1000 points per window instance
  int64_t median_value = 0;
};

Fixture MakeFixture(workload::Dataset ds) {
  Fixture f;
  f.data = std::move(ds);
  auto names = workload::LoadDataset(f.data, {}, &f.store);
  if (!names.ok()) std::abort();
  f.series = names.value()[0];
  const workload::SeriesData& s = f.data.series[0];
  f.t_min = s.times.front();
  int64_t span = s.times.back() - s.times.front();
  f.window_dt =
      std::max<int64_t>(1, span * 1000 / static_cast<int64_t>(s.times.size()));
  std::vector<int64_t> sorted = s.values;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  f.median_value = sorted[sorted.size() / 2];  // selectivity ~0.5
  return f;
}

std::string QuerySql(int q, const Fixture& f) {
  char buf[256];
  if (q == 1) {
    std::snprintf(buf, sizeof(buf), "SELECT SUM(v) FROM %s SW(%lld, %lld)",
                  f.series.c_str(), static_cast<long long>(f.t_min),
                  static_cast<long long>(f.window_dt));
  } else {
    std::snprintf(buf, sizeof(buf), "SELECT SUM(v) FROM %s WHERE v > %lld",
                  f.series.c_str(), static_cast<long long>(f.median_value));
  }
  return buf;
}

bool SameResult(const exec::QueryResult& a, const exec::QueryResult& b) {
  if (a.num_rows() != b.num_rows() || a.columns.size() != b.columns.size()) {
    return false;
  }
  for (size_t c = 0; c < a.columns.size(); ++c) {
    for (size_t r = 0; r < a.num_rows(); ++r) {
      double x = a.columns[c][r], y = b.columns[c][r];
      if (std::abs(x - y) > std::abs(x) * 1e-9 + 1e-6) return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace etsqp

int main() {
  using namespace etsqp;
  using bench::EndRow;
  using bench::PrintCell;
  using bench::PrintHeader;

  double scale = 0.05 * bench::BenchScale();
  Fixture f = MakeFixture(workload::MakeClimate(
      std::max<size_t>(2000, static_cast<size_t>(1'000'000 * scale))));

  // One shared engine: Execute is const and every query runs on the
  // process-wide pool, each bounded to 2 runners.
  exec::Engine engine(exec::PipelineOptions::Etsqp(2).WithStats(true));
  exec::Engine reference(exec::PipelineOptions::Serial().WithStats(true));

  constexpr int kQueriesPerClient = 4;
  PrintHeader("Concurrent queries: aggregate throughput, tuples/s "
              "(all-clients sum)",
              {"Query", "clients=1", "clients=4", "clients=16"});
  for (int q : {1, 3}) {
    PrintCell("Q" + std::to_string(q));
    std::string sql = QuerySql(q, f);
    auto plan = sql::PlanQuery(sql);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan failed: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    auto expected = reference.Execute(plan.value(), f.store);
    if (!expected.ok()) std::abort();

    for (int clients : {1, 4, 16}) {
      std::atomic<int> bad{0};
      std::vector<exec::ExecStats> client_stats(clients);
      bench::Timer wall;
      std::vector<std::thread> pool;
      pool.reserve(clients);
      for (int c = 0; c < clients; ++c) {
        pool.emplace_back([&, c] {
          for (int i = 0; i < kQueriesPerClient; ++i) {
            auto r = engine.Execute(plan.value(), f.store);
            if (!r.ok() || !SameResult(r.value(), expected.value())) {
              bad.fetch_add(1);
              return;
            }
            // Pool counters are process-wide deltas; only per-query tuple
            // counters are meaningful summed, so drop the pool field.
            exec::ExecStats s = r.value().stats;
            s.pool = metrics::PoolStats{};
            client_stats[c].Merge(s);
          }
        });
      }
      for (std::thread& t : pool) t.join();
      double secs = wall.Seconds();
      if (bad.load() != 0) {
        std::fprintf(stderr, "validation failed: %d bad results\n",
                     bad.load());
        return 1;
      }
      exec::ExecStats merged;
      for (const exec::ExecStats& s : client_stats) merged.Merge(s);
      PrintCell(bench::Throughput(merged, secs));
      bench::ExportJson("concurrent_queries",
                        "Q" + std::to_string(q) + "/clients=" +
                            std::to_string(clients),
                        secs, merged);
    }
    EndRow();
  }
  std::printf(
      "\npool: workers=%d threads_started=%llu tasks=%llu steals=%llu\n"
      "Expected shape: aggregate throughput holds (or grows with idle cores)"
      "\nfrom 1 to 16 clients — queries share the persistent pool instead of"
      "\nforking threads per query; threads_started stays near the core"
      "\ncount regardless of client count.\n",
      exec::ThreadPool::Global().workers_running(),
      static_cast<unsigned long long>(
          exec::ThreadPool::Global().threads_started()),
      static_cast<unsigned long long>(exec::ThreadPool::Global().stats().tasks),
      static_cast<unsigned long long>(
          exec::ThreadPool::Global().stats().steals));
  return 0;
}
