// Reproduces paper Table II: dataset statistics (name, label, size, #attr,
// category), extended with the achieved TS2DIFF compression ratio after
// ingestion — confirming the generators land in the intended delta regimes.

#include "bench/bench_util.h"
#include "storage/series_store.h"
#include "workload/generators.h"

int main() {
  using namespace etsqp;
  using bench::EndRow;
  using bench::PrintCell;
  using bench::PrintHeader;

  double scale = 0.1 * bench::BenchScale();
  std::vector<workload::Dataset> datasets = workload::MakeAllDatasets(scale);

  PrintHeader("Table II: dataset statistics",
              {"Name", "Label", "PaperRows", "BenchRows", "#Attr",
               "Category", "enc/raw"});
  const char* categories[6] = {"IoT",       "IoT", "IoT, Open",
                               "IoT",       "Generated", "Generated"};
  const char* names[6] = {"Atmosphere", "Climate", "Gas",
                          "Timestamp",  "Sine-function", "TPC-H"};
  for (size_t d = 0; d < datasets.size(); ++d) {
    const workload::Dataset& ds = datasets[d];
    storage::SeriesStore store;
    auto loaded = workload::LoadDataset(ds, {}, &store);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    uint64_t encoded = 0;
    for (const std::string& name : loaded.value()) {
      encoded += store.EncodedBytes(name);
    }
    double raw = static_cast<double>(ds.rows()) * ds.num_attrs() * 16.0;
    PrintCell(names[d]);
    PrintCell(ds.name);
    PrintCell(static_cast<double>(ds.paper_rows));
    PrintCell(static_cast<double>(ds.rows()));
    PrintCell(static_cast<double>(ds.num_attrs()));
    PrintCell(categories[d]);
    PrintCell(static_cast<double>(encoded) / raw);
    EndRow();
  }
  std::printf(
      "\nExpected shape: labels/attribute counts match Table II; bench rows"
      "\nare scaled (see DESIGN.md section 5); regular Timestamp data"
      "\ncompresses hardest, value-distribution TPCH the least.\n");
  return 0;
}
