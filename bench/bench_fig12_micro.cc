// Reproduces paper Figure 12: operator micro-benchmarks over the Sine and
// Timestamp datasets with a time-range filter (selectivity 0.5).
//   (a-b) Delta-only encoding: throughput vs thread count (scheduler
//         simulation over measured single-core costs — DESIGN.md section 5).
//   (c-d) Delta-Repeat: throughput vs run length — ETSQP's fused counting
//         vs SBoost's flatten-everything.
//   (e-f) Delta-Repeat-Packing: ETSQP-prune's cutoff effectiveness vs
//         packing width (tighter width bounds -> more pruning).
// FastLanes appears in every panel per the paper's discussion (4).

#include <random>

#include "baselines/fastlanes_exec.h"
#include "bench/bench_util.h"
#include "exec/engine.h"
#include "exec/pipeline.h"
#include "exec/scheduler_registry.h"
#include "sim/sched_sim.h"
#include "workload/generators.h"

namespace etsqp {
namespace {

using bench::EndRow;
using bench::PrintCell;
using bench::PrintHeader;

/// Builds a store holding one synthetic series with controllable run length
/// and delta width: runs of `run_len` share one delta drawn from
/// [0, 2^width).
struct MicroData {
  std::vector<int64_t> times;
  std::vector<int64_t> values;
};

MicroData MakeRunData(size_t n, size_t run_len, int width, uint64_t seed) {
  std::mt19937_64 rng(seed);
  MicroData d;
  d.times.resize(n);
  d.values.resize(n);
  int64_t t = 0;
  int64_t v = 0;
  size_t left = 0;
  int64_t delta = 0;
  bool up = true;
  for (size_t i = 0; i < n; ++i) {
    if (left == 0) {
      left = run_len;
      // Alternating-sign runs keep the walk zero-mean, so the value domain
      // stays bounded as the packing width grows (the paper's (e-f) sweep
      // varies width while "data points stay unvaried").
      delta = static_cast<int64_t>(rng() & ((1ull << width) - 1));
      if (!up) delta = -delta;
      up = !up;
    }
    t += 1;
    v += delta;
    --left;
    d.times[i] = t;
    d.values[i] = v;
  }
  return d;
}

storage::SeriesStore MakeStore(const MicroData& d, enc::ColumnEncoding venc,
                               uint32_t page_size = 16384) {
  storage::SeriesStore store;
  storage::SeriesStore::SeriesOptions opt;
  opt.page_size = page_size;
  opt.page.value_encoding = venc;
  if (!store.CreateSeries("s", opt).ok()) std::abort();
  if (!store.AppendBatch("s", d.times.data(), d.values.data(), d.times.size())
           .ok()) {
    std::abort();
  }
  if (!store.Flush().ok()) std::abort();
  return store;
}

double MeasureThroughput(const storage::SeriesStore& store,
                         const exec::PipelineOptions& options,
                         const exec::LogicalPlan& plan) {
  exec::Engine engine(options);
  exec::QueryStats stats;
  double secs = bench::TimeBest(
      [&] {
        auto result = engine.Execute(plan, store);
        if (!result.ok()) std::abort();
        stats = result.value().stats;
      },
      0.03, 7);
  return bench::Throughput(stats, secs);
}

/// Registry-panel JSON: one line per page class comparing the entry the
/// static Proposition 1 model picks against the calibrated pick, with a
/// selection_changed flag (the acceptance check for self-tuning: calibration
/// either changes the selection somewhere or provably agrees everywhere).
void ExportRegistryJson(const std::string& class_key, const char* plan_shape,
                        const exec::ScheduleDecision& model,
                        const exec::ScheduleDecision& calibrated) {
  const char* path = std::getenv("ETSQP_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(
      f,
      "{\"bench\": \"fig12_micro\", \"case\": \"registry/%s/%s\", "
      "\"model_entry\": \"%s\", \"model_ns_per_tuple\": %.4f, "
      "\"calibrated_entry\": \"%s\", \"calibrated_ns_per_tuple\": %.4f, "
      "\"selection_changed\": %s}\n",
      class_key.c_str(), plan_shape, model.entry->name(),
      model.predicted_ns_per_tuple, calibrated.entry->name(),
      calibrated.predicted_ns_per_tuple,
      std::string(model.entry->name()) != calibrated.entry->name() ? "true"
                                                                   : "false");
  std::fclose(f);
}

exec::LogicalPlan HalfRangePlan(const MicroData& d) {
  exec::LogicalPlan plan = exec::LogicalPlan::Aggregate("s",
                                                        exec::AggFunc::kSum);
  // Time-range filter with selectivity 0.5 (paper default).
  plan.time_filter.lo = d.times[d.times.size() / 4];
  plan.time_filter.hi = d.times[d.times.size() * 3 / 4];
  return plan;
}

}  // namespace
}  // namespace etsqp

int main() {
  using namespace etsqp;
  size_t n = static_cast<size_t>(400'000 * bench::BenchScale());

  // ---- (a-b) Delta-only: thread scaling via the scheduler simulator.
  for (const char* label : {"Sine-like", "Timestamp-like"}) {
    bool sine = std::string(label) == "Sine-like";
    MicroData d = MakeRunData(n, 1, sine ? 12 : 7, sine ? 1 : 2);
    storage::SeriesStore ts = MakeStore(d, enc::ColumnEncoding::kTs2Diff);
    exec::LogicalPlan plan = HalfRangePlan(d);

    auto page_costs = [&](const exec::PipelineOptions& opt) {
      auto s = ts.GetSeries("s");
      std::vector<double> costs;
      for (const auto& page_ptr : s.value()->pages) {
        const storage::Page& page = *page_ptr;
        costs.push_back(bench::TimeBest(
            [&] {
              exec::AggAccum a;
              exec::QueryStats st;
              if (!exec::AggregateSlice(page, 0, page.header.count,
                                        plan.time_filter, exec::ValueRange{},
                                        exec::AggFunc::kSum, opt, &a, &st)
                       .ok()) {
                std::abort();
              }
            },
            0.01, 5));
      }
      return costs;
    };
    std::vector<double> etsqp_costs = page_costs(exec::PipelineOptions::Etsqp(1));
    std::vector<double> sboost_costs = page_costs(exec::PipelineOptions::Sboost(1));

    PrintHeader(std::string("Figure 12(a-b) Delta-only, ") + label +
                    ": tuples/s vs threads",
                {"Threads", "ETSQP", "SBoost"});
    for (int p : {1, 2, 4, 8, 16}) {
      std::vector<sim::SimJob> ej;
      if (etsqp_costs.size() >= static_cast<size_t>(p)) {
        ej = sim::JobsFromCosts(etsqp_costs);
      } else {
        ej = sim::SlicedJobs(etsqp_costs,
                             (p + static_cast<int>(etsqp_costs.size()) - 1) /
                                 static_cast<int>(etsqp_costs.size()),
                             2e-7, false);
      }
      auto re = sim::Simulate(ej, p, sim::SchedulePolicy::kSharedQueue);
      auto sj = sim::SlicedJobs(sboost_costs, p, 2e-7, true);
      auto rs = sim::Simulate(sj, p, sim::SchedulePolicy::kStaticPartition);
      PrintCell(static_cast<double>(p));
      PrintCell(static_cast<double>(n) / re.makespan);
      PrintCell(static_cast<double>(n) / rs.makespan);
      EndRow();
    }
  }

  // ---- (c-d) Delta-Repeat: run-length sweep.
  PrintHeader("Figure 12(c-d) Delta-Repeat: tuples/s vs run length",
              {"RunLength", "ETSQP(fused)", "SBoost(flatten)", "FastLanes"});
  for (size_t run : {1ul, 4ul, 16ul, 64ul, 256ul, 1024ul}) {
    MicroData d = MakeRunData(n, run, 6, 77 + run);
    storage::SeriesStore dr = MakeStore(d, enc::ColumnEncoding::kDeltaRle);
    storage::SeriesStore fl = MakeStore(d, enc::ColumnEncoding::kFastLanes);
    // FastLanes also needs its time column in FLMM layout.
    exec::LogicalPlan plan = HalfRangePlan(d);
    PrintCell(static_cast<double>(run));
    PrintCell(MeasureThroughput(dr, exec::PipelineOptions::Etsqp(1), plan));
    PrintCell(MeasureThroughput(dr, exec::PipelineOptions::Sboost(1), plan));
    PrintCell(MeasureThroughput(fl, exec::PipelineOptions::FastLanes(1), plan));
    EndRow();
  }

  // ---- (e-f) Delta-Repeat-Packing: packing width sweep with a value
  // filter whose satisfying range sits at the top of the domain, so tighter
  // width bounds prune more blocks (Proposition 5).
  PrintHeader(
      "Figure 12(e-f) Delta-Repeat-Packing: tuples/s vs packing width",
      {"Width", "ETSQP", "ETSQP-prune", "SBoost", "FastLanes"});
  for (int width : {2, 4, 8, 12, 16, 20}) {
    MicroData d = MakeRunData(n, 16, width, 99 + width);
    storage::SeriesStore dr =
        MakeStore(d, enc::ColumnEncoding::kTs2Diff, 4096);
    storage::SeriesStore fl = MakeStore(d, enc::ColumnEncoding::kFastLanes);
    exec::LogicalPlan plan = exec::LogicalPlan::Aggregate(
        "s", exec::AggFunc::kSum);
    plan.value_filter.active = true;
    plan.value_filter.lo = d.values[d.values.size() / 2];  // upper half only
    PrintCell(static_cast<double>(width));
    PrintCell(MeasureThroughput(dr, exec::PipelineOptions::Etsqp(1), plan));
    PrintCell(MeasureThroughput(dr, exec::PipelineOptions::EtsqpPrune(1), plan));
    PrintCell(MeasureThroughput(dr, exec::PipelineOptions::Sboost(1), plan));
    PrintCell(MeasureThroughput(fl, exec::PipelineOptions::FastLanes(1), plan));
    EndRow();
  }

  // ---- SchedulerRegistry: static Proposition 1 model vs calibrated
  // selection over the page classes this benchmark exercises. The two plan
  // shapes split the entry space: "fused" admits etsqp.fused, "filtered"
  // (value filter present) forces the unfused decode entries to compete,
  // which is where measured costs can reorder the static ranking.
  {
    const exec::SchedulerRegistry& reg = exec::SchedulerRegistry::Global();
    exec::CostCalibration calib = exec::CostCalibration::Measure();
    exec::CostConstants constants;

    exec::PlanContext fused;  // SUM aggregate, fusion permitted (defaults)
    exec::PlanContext filtered;
    filtered.value_filter = true;

    struct RegistryCase {
      const char* shape;
      exec::PageClass cls;
      const exec::PlanContext* ctx;
    };
    std::vector<RegistryCase> cases;
    for (int w : {2, 4, 8, 12, 16, 20}) {
      exec::PageClass c;
      c.value_encoding = enc::ColumnEncoding::kTs2Diff;
      c.width_bucket = w;
      cases.push_back({"fused", c, &fused});
      cases.push_back({"filtered", c, &filtered});
    }
    exec::PageClass rle;
    rle.value_encoding = enc::ColumnEncoding::kDeltaRle;
    rle.width_bucket = 8;
    cases.push_back({"fused", rle, &fused});
    exec::PageClass flc;
    flc.value_encoding = enc::ColumnEncoding::kFastLanes;
    flc.width_bucket = 8;
    cases.push_back({"filtered", flc, &filtered});

    PrintHeader(
        "SchedulerRegistry: static cost model vs calibrated selection",
        {"Class", "Plan", "Model", "ns/t", "Calibrated", "ns/t", "Changed"});
    int changed = 0;
    for (const RegistryCase& k : cases) {
      exec::ScheduleDecision m = reg.Propose(k.cls, *k.ctx, nullptr, constants);
      exec::ScheduleDecision c = reg.Propose(k.cls, *k.ctx, &calib, constants);
      if (m.entry == nullptr || c.entry == nullptr) continue;
      bool diff = std::string(m.entry->name()) != c.entry->name();
      changed += diff ? 1 : 0;
      PrintCell(k.cls.Key());
      PrintCell(k.shape);
      PrintCell(m.entry->name());
      PrintCell(m.predicted_ns_per_tuple);
      PrintCell(c.entry->name());
      PrintCell(c.predicted_ns_per_tuple);
      PrintCell(diff ? "yes" : "no");
      EndRow();
      ExportRegistryJson(k.cls.Key(), k.shape, m, c);
    }
    std::printf(
        "(%d of %zu page-class/plan cases change kernel selection once "
        "calibrated)\n",
        changed, cases.size());
  }

  std::printf(
      "\nExpected shape (paper Fig. 12): (a-b) ETSQP's thread gains exceed"
      "\nSBoost's; (c-d) larger runs widen ETSQP's fused-aggregation lead"
      "\n(O(1) per run vs flatten) while FastLanes stays flat; (e-f) pruning"
      "\ngains shrink as packing width grows (looser Prop. 5 bounds), and"
      "\nFastLanes hits its I/O bottleneck at large widths.\n");
  return 0;
}
