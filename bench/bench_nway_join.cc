// N-way timestamp merge/join microbenchmark: the SIMD merge kernel family
// (src/simd/merge_simd.h) against the scalar drains it replaced. The
// headline case is a 256-series intersection — the paper's Q5-style
// concatenation fan-in — where the pairwise galloping/block-skip fold must
// beat the scalar k-pointer drain by >= 2x. Also measured: 256-way union
// through the run-extending loser tree, and the 2-way index join that
// backs binary expressions and CORR.
//
//   ETSQP_BENCH_SCALE   scales the per-stream point count (default 1.0)
//   ETSQP_BENCH_JSON    appends one JSON line per case

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "simd/merge_simd.h"

namespace etsqp {
namespace {

using bench::PrintCell;
using bench::PrintHeader;
using bench::TimeBest;

constexpr size_t kWays = 256;

struct Workload {
  std::vector<std::vector<int64_t>> times;
  std::vector<std::vector<int64_t>> values;
  std::vector<simd::MergeStream> streams;
  size_t total = 0;
};

/// 256 strictly-increasing streams drawn from a shared tick universe, each
/// keeping (drop_one_in - 1) / drop_one_in of the ticks — sensors on the
/// same clock with independent gaps. drop_one_in = 32 keeps each stream
/// dense (~97%) yet leaves only a handful of ticks surviving all 256
/// streams: a selective but non-empty intersection.
Workload MakeSharedClockWorkload(size_t per_stream, uint64_t drop_one_in) {
  Workload w;
  w.times.resize(kWays);
  w.values.resize(kWays);
  w.streams.resize(kWays);
  std::mt19937_64 rng(7);
  std::vector<int64_t> universe;
  universe.reserve(per_stream);
  int64_t t = 1'600'000'000'000;
  for (size_t i = 0; i < per_stream; ++i) {
    t += 1 + static_cast<int64_t>(rng() % 50);
    universe.push_back(t);
  }
  for (size_t s = 0; s < kWays; ++s) {
    for (int64_t u : universe) {
      if (rng() % drop_one_in != 0) {
        w.times[s].push_back(u);
        w.values[s].push_back(static_cast<int64_t>(rng() % 1000));
      }
    }
    w.streams[s] = {w.times[s].data(), w.values[s].data(), w.times[s].size()};
    w.total += w.times[s].size();
  }
  return w;
}

/// Correlated-sensor shape for the N-way intersection: every stream
/// carries the fleet's shared sync ticks (they all survive) plus a large
/// body of per-stream event ticks that almost never coincide across 256
/// streams. The intersection is exactly the sync set — selective, so the
/// fold's candidate list collapses after the first stream pair and the
/// remaining 254 streams are galloped through.
Workload MakeSyncPointWorkload(size_t per_stream, size_t sync_points) {
  Workload w;
  w.times.resize(kWays);
  w.values.resize(kWays);
  w.streams.resize(kWays);
  std::mt19937_64 rng(13);
  std::vector<int64_t> sync(sync_points);
  const int64_t base = 1'600'000'000'000;
  for (size_t i = 0; i < sync_points; ++i) {
    sync[i] = base + static_cast<int64_t>(i) * 1'000'000;
  }
  for (size_t s = 0; s < kWays; ++s) {
    std::vector<int64_t>& t = w.times[s];
    t = sync;
    for (size_t i = sync_points; i < per_stream; ++i) {
      // Event ticks land between sync points; off-grid offsets make
      // cross-stream collisions vanishingly rare.
      t.push_back(base + static_cast<int64_t>(rng() % (sync_points * 1'000'000)));
    }
    std::sort(t.begin(), t.end());
    t.erase(std::unique(t.begin(), t.end()), t.end());
    w.values[s].resize(t.size());
    for (size_t i = 0; i < t.size(); ++i) {
      w.values[s][i] = static_cast<int64_t>(rng() % 1000);
    }
    w.streams[s] = {t.data(), w.values[s].data(), t.size()};
    w.total += t.size();
  }
  return w;
}

/// Q5 concatenation shape: devices upload in batches, so the global
/// timeline splits into contiguous blocks each owned by one stream — long
/// single-stream runs for the union's bulk-copy path.
Workload MakeBlockyWorkload(size_t per_stream, size_t block) {
  Workload w;
  w.times.resize(kWays);
  w.values.resize(kWays);
  w.streams.resize(kWays);
  std::mt19937_64 rng(11);
  int64_t t = 1'600'000'000'000;
  size_t remaining = per_stream * kWays;
  while (remaining > 0) {
    size_t s = rng() % kWays;
    size_t len = std::min(remaining, block / 2 + rng() % block);
    for (size_t i = 0; i < len; ++i) {
      t += 1 + static_cast<int64_t>(rng() % 8);
      w.times[s].push_back(t);
      w.values[s].push_back(static_cast<int64_t>(rng() % 1000));
    }
    remaining -= len;
  }
  for (size_t s = 0; s < kWays; ++s) {
    w.streams[s] = {w.times[s].data(), w.values[s].data(), w.times[s].size()};
    w.total += w.times[s].size();
  }
  return w;
}

void ExportCase(const char* case_name, double scalar_s, double simd_s,
                size_t tuples) {
  const char* path = std::getenv("ETSQP_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"bench\": \"nway_join\", \"case\": \"%s\", "
               "\"scalar_seconds\": %.9f, \"simd_seconds\": %.9f, "
               "\"speedup\": %.3f, \"tuples\": %zu, "
               "\"simd_tuples_per_sec\": %.3f}\n",
               case_name, scalar_s, simd_s,
               simd_s > 0 ? scalar_s / simd_s : 0.0, tuples,
               simd_s > 0 ? static_cast<double>(tuples) / simd_s : 0.0);
  std::fclose(f);
}

void Row(const char* name, double scalar_s, double simd_s, size_t tuples) {
  PrintCell(name);
  PrintCell(scalar_s * 1e3);
  PrintCell(simd_s * 1e3);
  PrintCell(simd_s > 0 ? scalar_s / simd_s : 0.0);
  bench::EndRow();
  ExportCase(name, scalar_s, simd_s, tuples);
}

}  // namespace
}  // namespace etsqp

int main() {
  using namespace etsqp;
  const size_t per_stream =
      static_cast<size_t>(20'000 * bench::BenchScale());
  Workload dense = MakeSharedClockWorkload(per_stream, 32);
  Workload synced = MakeSyncPointWorkload(per_stream, 200);
  Workload blocky = MakeBlockyWorkload(per_stream, 2048);
  const simd::MergeIsa isa = simd::BestMergeIsa();
  std::printf("N-way merge/join kernels: %zu streams x ~%zu timestamps "
              "(isa=%d)\n",
              kWays, per_stream, static_cast<int>(isa));
  PrintHeader("scalar drain vs SIMD kernel (best-of timing)",
              {"case", "scalar-ms", "simd-ms", "speedup"});

  // 256-way intersection: scalar k-pointer drain vs pairwise SIMD fold.
  // The fold's candidate list collapses to the sync set after one stream
  // pair, so the remaining streams are galloped through while the scalar
  // drain must walk all ~5M elements.
  std::vector<int64_t> out;
  double sc = TimeBest([&] {
    simd::NwayIntersectScalar(synced.streams.data(), kWays, &out);
  });
  size_t isect = out.size();
  double sv = TimeBest([&] {
    simd::NwayIntersect(synced.streams.data(), kWays, &out, isa);
  });
  Row("intersect_256way", sc, sv, synced.total);

  // Same drain on the dense shared-clock shape: candidates stay wide, so
  // the fold's advantage narrows — the honest worst case.
  sc = TimeBest([&] {
    simd::NwayIntersectScalar(dense.streams.data(), kWays, &out);
  });
  sv = TimeBest([&] {
    simd::NwayIntersect(dense.streams.data(), kWays, &out, isa);
  });
  Row("intersect_256way_dense", sc, sv, dense.total);

  // 256-way union on the batched-upload shape: plain loser tree vs the
  // run-extending loser tree (long single-stream runs bulk-copy).
  std::vector<int64_t> out_t(blocky.total), out_v(blocky.total);
  sc = TimeBest([&] {
    simd::NwayMergeUnionScalar(blocky.streams.data(), kWays, out_t.data(),
                               out_v.data());
  });
  sv = TimeBest([&] {
    simd::NwayMergeUnion(blocky.streams.data(), kWays, out_t.data(),
                         out_v.data(), isa);
  });
  Row("union_256way_blocky", sc, sv, blocky.total);

  // Adversarial union shape — shared clock, so runs are 1-2 elements and
  // the run-extension machinery is pure overhead. Kept honest here; the
  // scheduler's merge calibration decides per deployment.
  out_t.resize(dense.total);
  out_v.resize(dense.total);
  sc = TimeBest([&] {
    simd::NwayMergeUnionScalar(dense.streams.data(), kWays, out_t.data(),
                               out_v.data());
  });
  sv = TimeBest([&] {
    simd::NwayMergeUnion(dense.streams.data(), kWays, out_t.data(),
                         out_v.data(), isa);
  });
  Row("union_256way_interleaved", sc, sv, dense.total);

  // 2-way index join (binary expressions / CORR), three rate shapes:
  // identical clocks (one device, two sensors — the pairwise-equal block
  // path), jittered clocks (~97% overlap), and a 32x rate mismatch
  // (galloping).
  const simd::MergeStream& a = dense.streams[0];
  const simd::MergeStream& b = dense.streams[1];
  std::vector<uint32_t> il(a.n), ir(a.n);
  sc = TimeBest([&] {
    simd::IntersectIndicesInt64Scalar(a.times, a.n, a.times, a.n, il.data(),
                                      ir.data());
  });
  sv = TimeBest([&] {
    simd::IntersectIndicesInt64(a.times, a.n, a.times, a.n, il.data(),
                                ir.data(), isa);
  });
  Row("join_2way_identical", sc, sv, 2 * a.n);
  sc = TimeBest([&] {
    simd::IntersectIndicesInt64Scalar(a.times, a.n, b.times, b.n, il.data(),
                                      ir.data());
  });
  sv = TimeBest([&] {
    simd::IntersectIndicesInt64(a.times, a.n, b.times, b.n, il.data(),
                                ir.data(), isa);
  });
  Row("join_2way_jittered", sc, sv, a.n + b.n);
  std::vector<int64_t> deci;
  for (size_t i = 0; i < a.n; i += 32) deci.push_back(a.times[i]);
  sc = TimeBest([&] {
    simd::IntersectIndicesInt64Scalar(a.times, a.n, deci.data(), deci.size(),
                                      il.data(), ir.data());
  });
  sv = TimeBest([&] {
    simd::IntersectIndicesInt64(a.times, a.n, deci.data(), deci.size(),
                                il.data(), ir.data(), isa);
  });
  Row("join_2way_decimated", sc, sv, a.n + deci.size());

  std::printf(
      "\nintersection result: %zu sync ticks survive all %zu streams."
      "\nExpected shape: the pairwise fold shrinks the candidate list"
      "\nbefore the large streams are touched, so intersect_256way clears"
      "\n2x over the scalar k-pointer drain; union gains from bulk run"
      "\ncopies on blocky data; join_2way_decimated from block skips.\n",
      isect, kWays);
  return 0;
}
