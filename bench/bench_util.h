#ifndef ETSQP_BENCH_BENCH_UTIL_H_
#define ETSQP_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "exec/expr.h"

namespace etsqp::bench {

/// Wall-clock timer (steady clock), seconds.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Runs `fn` repeatedly until ~`min_seconds` elapse (at least once) and
/// returns the best per-iteration time (paper-style steady-state timing).
inline double TimeBest(const std::function<void()>& fn,
                       double min_seconds = 0.2, int max_iters = 50) {
  double best = 1e100;
  double total = 0;
  for (int i = 0; i < max_iters && (total < min_seconds || i < 3); ++i) {
    Timer t;
    fn();
    double s = t.Seconds();
    total += s;
    if (s < best) best = s;
  }
  return best;
}

/// Throughput in tuples/second given the paper's metric: tuples of loaded
/// pages per second, *counting* tuples of pruned pages or slices
/// (Section VII-B).
inline double Throughput(const exec::QueryStats& stats, double seconds) {
  return seconds > 0 ? static_cast<double>(stats.tuples_in_pages) / seconds
                     : 0.0;
}

/// Global benchmark scale factor (ETSQP_BENCH_SCALE, default 1.0 applied to
/// the library's already-scaled Table II defaults).
inline double BenchScale() {
  const char* env = std::getenv("ETSQP_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

/// Machine-readable result export: when ETSQP_BENCH_JSON names a file, each
/// call appends one JSON line with the timing and the full ExecStats object
/// (counters plus the per-stage breakdown when collected). No-op otherwise.
inline void ExportJson(const std::string& bench, const std::string& case_name,
                       double seconds, const exec::ExecStats& stats) {
  const char* path = std::getenv("ETSQP_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"bench\": \"%s\", \"case\": \"%s\", \"seconds\": %.9f, "
               "\"tuples_per_sec\": %.3f, \"stats\": %s}\n",
               bench.c_str(), case_name.c_str(), seconds,
               Throughput(stats, seconds), stats.ToJson().c_str());
  std::fclose(f);
}

/// Fixed-width table printing.
inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& cols) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const std::string& c : cols) std::printf("%-16s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < cols.size(); ++i) std::printf("%-16s", "----");
  std::printf("\n");
}

inline void PrintCell(const std::string& s) { std::printf("%-16s", s.c_str()); }
inline void PrintCell(double v) {
  char buf[32];
  if (v == 0) {
    std::snprintf(buf, sizeof(buf), "0");
  } else if (std::abs(v) >= 1e6 || (std::abs(v) < 1e-2 && v != 0)) {
    std::snprintf(buf, sizeof(buf), "%.3e", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  std::printf("%-16s", buf);
}
inline void EndRow() { std::printf("\n"); }

}  // namespace etsqp::bench

#endif  // ETSQP_BENCH_BENCH_UTIL_H_
